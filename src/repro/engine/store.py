"""Content-addressed on-disk artifact store.

Layout::

    <root>/v<SCHEMA_VERSION>/<kind>/<key[:2]>/<key>.art

``key`` is a :func:`repro.engine.keys.stable_digest` of the artifact's
inputs, so the path *is* the cache lookup.  Writes go through a
temporary file in the same directory followed by :func:`os.replace`, so
concurrent writers (pool workers racing on a shared artifact) are safe:
both compute identical content and the last rename wins atomically.
Reads verify the envelope digest (:func:`repro.engine.serialize.unpack`)
and raise :class:`~repro.robustness.errors.TraceIntegrityError` on any
corruption.

Version invalidation is structural: artifacts live under a
``v<SCHEMA_VERSION>`` directory, so bumping the schema version orphans
every old artifact without any migration logic.  ``stats()`` reports
stale versions and ``clear()`` removes everything.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.keys import KINDS, SCHEMA_VERSION
from repro.engine.metrics import PipelineMetrics
from repro.engine.serialize import pack, unpack

_SUFFIX = ".art"


@dataclass
class StoreStats:
    """Inventory of one store root."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    #: other vN directories present (orphaned by schema bumps)
    stale_versions: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"artifact store at {self.root}",
                 f"  schema version : v{SCHEMA_VERSION}",
                 f"  artifacts      : {self.entries} "
                 f"({self.total_bytes / 1024:.1f} KiB)"]
        for kind in KINDS:
            if self.by_kind.get(kind):
                lines.append(
                    f"    {kind:<9s}: {self.by_kind[kind]:>5d}  "
                    f"{self.bytes_by_kind.get(kind, 0) / 1024:>9.1f} KiB")
        if self.stale_versions:
            lines.append(f"  stale versions : "
                         f"{', '.join(self.stale_versions)} "
                         f"(run `repro cache clear` to reclaim)")
        return "\n".join(lines)


class ArtifactStore:
    """Digest-addressed artifact cache rooted at one directory."""

    def __init__(self, root: str | os.PathLike,
                 metrics: PipelineMetrics | None = None):
        self.root = Path(root)
        self.version_dir = self.root / f"v{SCHEMA_VERSION}"
        self.metrics = metrics if metrics is not None else PipelineMetrics()

    def _path(self, kind: str, key: str) -> Path:
        if kind not in KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return self.version_dir / kind / key[:2] / f"{key}{_SUFFIX}"

    # ----- access -------------------------------------------------------

    def get(self, kind: str, key: str) -> Any | None:
        """Load an artifact, or None on a miss.

        A present-but-corrupted artifact raises
        :class:`TraceIntegrityError` — it is never silently treated as a
        miss, because the same corruption could strike after a result
        was already served from it.
        """
        path = self._path(kind, key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.metrics.record_miss(kind)
            return None
        payload = unpack(blob, expect_kind=kind)
        self.metrics.record_hit(kind, len(blob))
        return payload

    def put(self, kind: str, key: str, payload: Any) -> None:
        """Atomically persist an artifact (last writer wins)."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pack(kind, payload)
        self.metrics.record_write(kind, len(blob))
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink(missing_ok=True)

    def contains(self, kind: str, key: str) -> bool:
        """Presence probe; does not touch hit/miss counters."""
        return self._path(kind, key).exists()

    # ----- maintenance --------------------------------------------------

    def stats(self) -> StoreStats:
        stats = StoreStats(root=str(self.root))
        if self.root.is_dir():
            for entry in sorted(self.root.iterdir()):
                if entry.is_dir() and entry.name.startswith("v") \
                        and entry != self.version_dir:
                    stats.stale_versions.append(entry.name)
        if not self.version_dir.is_dir():
            return stats
        for kind_dir in sorted(self.version_dir.iterdir()):
            if not kind_dir.is_dir():
                continue
            count = 0
            kind_bytes = 0
            for path in kind_dir.rglob(f"*{_SUFFIX}"):
                count += 1
                kind_bytes += path.stat().st_size
            if count:
                stats.by_kind[kind_dir.name] = count
                stats.bytes_by_kind[kind_dir.name] = kind_bytes
                stats.entries += count
                stats.total_bytes += kind_bytes
        return stats

    def clear(self) -> int:
        """Remove every artifact (all schema versions); returns count."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for entry in list(self.root.iterdir()):
            if entry.is_dir() and entry.name.startswith("v"):
                removed += sum(1 for _ in entry.rglob(f"*{_SUFFIX}"))
                shutil.rmtree(entry)
        return removed
