"""Per-stage cProfile collection for the pipeline (``--profile``).

A :class:`StageProfiler` attaches to :class:`~repro.engine.metrics.
PipelineMetrics` (its ``profiler`` slot); every ``metrics.timer(stage)``
block then runs under a per-stage :class:`cProfile.Profile`, and the
accumulated profiles are written out as one ``.pstats`` file per stage
plus a human-readable top-N cumulative summary.

Profiles accumulate across invocations of the same stage, so the dump
for ``emulate`` covers every emulation of the run, not just the last
one.  Only in-process work is profiled — pool workers (``--jobs N``)
run in their own interpreters and are not captured.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from pathlib import Path


class StageProfiler:
    """Accumulates one :class:`cProfile.Profile` per pipeline stage."""

    def __init__(self, top: int = 20):
        self.top = top
        self._profiles: dict[str, cProfile.Profile] = {}

    @contextmanager
    def record(self, stage: str):
        """Profile one timed block, accumulating into ``stage``'s data.

        Stage timers never nest (each pipeline stage resolves its
        dependencies *before* entering its own timer), so enabling a
        single profiler here cannot collide with another active one.
        """
        profile = self._profiles.get(stage)
        if profile is None:
            profile = self._profiles[stage] = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()

    @property
    def stages(self) -> list[str]:
        return sorted(self._profiles)

    # ----- output -------------------------------------------------------

    def summary(self) -> str:
        """Top-N cumulative-time functions for every profiled stage."""
        out = io.StringIO()
        for stage in self.stages:
            out.write(f"===== stage: {stage} (top {self.top} by "
                      f"cumulative time) =====\n")
            stats = pstats.Stats(self._profiles[stage], stream=out)
            stats.sort_stats("cumulative").print_stats(self.top)
            out.write("\n")
        return out.getvalue()

    def write(self, directory: str | Path,
              prefix: str = "profile") -> list[str]:
        """Dump ``<prefix>_<stage>.pstats`` per stage plus a text
        summary; returns the written paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[str] = []
        for stage in self.stages:
            path = directory / f"{prefix}_{stage}.pstats"
            self._profiles[stage].dump_stats(str(path))
            written.append(str(path))
        summary_path = directory / f"{prefix}_summary.txt"
        summary_path.write_text(self.summary())
        written.append(str(summary_path))
        return written
