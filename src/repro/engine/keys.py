"""Stable content digests for cache keys.

An artifact is addressed by a SHA-256 digest of everything that went
into producing it: the workload source, the toolchain options, the
model, the schedule-relevant machine parameters, and the repro schema
version.  Two runs with identical inputs therefore share artifacts;
changing any input (or bumping :data:`SCHEMA_VERSION`) produces a new
address and implicitly invalidates every stale artifact.

Digests are computed over a canonical JSON encoding so they are stable
across processes, Python versions and dict insertion orders — ``hash()``
is salted per process and must never leak into a key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

#: bump to invalidate every artifact ever written (schema evolution of
#: Program / trace / stats serialization, simulator semantics changes).
#: v2: execution artifacts store columnar ``TraceColumns`` traces.
SCHEMA_VERSION = 2

#: artifact kinds the store recognizes, in pipeline order
KINDS = ("frontend", "profile", "compiled", "execution", "stats")


def _canonical(obj: Any) -> Any:
    """Lower ``obj`` to a JSON-encodable canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips floats exactly; JSON float encoding would too,
        # but being explicit keeps the canonical form obvious.
        return ["float", repr(obj)]
    if isinstance(obj, bytes):
        return ["bytes", obj.hex()]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, obj.name]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return ["dc", type(obj).__name__,
                {f.name: _canonical(getattr(obj, f.name))
                 for f in dataclasses.fields(obj)}]
    if isinstance(obj, dict):
        return ["dict", sorted((str(k), _canonical(v))
                               for k, v in obj.items())]
    if isinstance(obj, (list, tuple)):
        return ["list", [_canonical(v) for v in obj]]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted(json.dumps(_canonical(v), sort_keys=True)
                              for v in obj)]
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a "
                    f"cache key: {obj!r}")


def stable_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    payload = json.dumps([_canonical(p) for p in parts], sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# ----- pipeline-stage keys -------------------------------------------------
#
# Each key covers exactly the inputs that can change the artifact's
# content.  Observability knobs (paranoid, verify, artifact_dir) are
# deliberately excluded — see ToolchainOptions.digest().

def frontend_key(source: str) -> str:
    """Key of the optimized baseline IR for one MiniC source."""
    return stable_digest(SCHEMA_VERSION, "frontend", source)


def profile_key(name: str, source: str, scale: float,
                max_steps: int) -> str:
    """Key of a training-run profile.

    ``name`` participates because input generation is workload-specific
    code, not derivable from the source text alone.
    """
    return stable_digest(SCHEMA_VERSION, "profile", name, source, scale,
                         max_steps)


def compile_key(name: str, source: str, scale: float, max_steps: int,
                model_name: str, options_digest: str,
                schedule_digest: str) -> str:
    """Key of a compiled program (depends on the profile's inputs too)."""
    return stable_digest(SCHEMA_VERSION, "compiled", name, source, scale,
                         max_steps, model_name, options_digest,
                         schedule_digest)


def execution_key(compiled_key: str, scale: float, max_steps: int) -> str:
    """Key of an emulation trace for one compiled program."""
    return stable_digest(SCHEMA_VERSION, "execution", compiled_key, scale,
                         max_steps)


def stats_key(execution_key_: str, machine_digest: str) -> str:
    """Key of the cycle-simulation result (trace x full machine)."""
    return stable_digest(SCHEMA_VERSION, "stats", execution_key_,
                         machine_digest)
