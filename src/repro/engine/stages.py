"""The memoized, store-backed pipeline shared by suite and workers.

A :class:`PipelineContext` owns the three-stage pipeline of the paper's
methodology — compile per model, emulate to a trace, simulate per
machine — with two levels of reuse:

* an in-process memo (what :class:`ExperimentSuite` historically kept in
  ad-hoc dicts), now keyed by the stable digests of
  :mod:`repro.engine.keys` instead of hand-picked tuple fields;
* an optional :class:`~repro.engine.store.ArtifactStore`, consulted
  before any computation and fed after it, so artifacts survive the
  process and are shared across processes.

Both the experiment suite (serial path) and the scheduler's pool
workers (parallel path) drive this same class, so cache keying and
metrics accounting cannot drift between the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.profile import Profile
from repro.emu.interpreter import run_program
from repro.emu.trace import ExecutionResult
from repro.engine import keys
from repro.fastpath.columns import TraceColumns
from repro.fastpath.decode import DecodedProgram, decode_program
from repro.fastpath.interp import run_program_fast
from repro.fastpath.simulate import SimPrep, prepare_sim, simulate_columns
from repro.engine.metrics import PipelineMetrics
from repro.engine.store import ArtifactStore
from repro.ir.function import Program
from repro.ir.instruction import ensure_uid_headroom
from repro.machine.descriptor import MachineDescription
from repro.robustness.errors import TraceIntegrityError
from repro.robustness.integrity import check_trace_integrity
from repro.robustness.watchdog import EmulationWatchdog
from repro.sim.pipeline import SimulationStats, simulate_trace
from repro.toolchain import (CompiledProgram, Model, ToolchainOptions,
                             compile_for_model, frontend)
from repro.workloads.base import Workload


@dataclass
class RunSummary:
    """The cacheable outcome of one (workload, model, machine) triple."""

    stats: SimulationStats
    return_value: int | float
    static_size: int


@dataclass
class PipelineContext:
    """Memoized compile/emulate/simulate pipeline over one configuration."""

    scale: float = 1.0
    options: ToolchainOptions = field(default_factory=ToolchainOptions)
    max_steps: int = 20_000_000
    paranoid: bool = False
    wall_clock_budget: float | None = None
    store: ArtifactStore | None = None
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)
    #: emulate/simulate through the pre-decoded fastpath (columnar
    #: traces); False falls back to the legacy object-graph loops,
    #: which remain the differential oracle
    fastpath: bool = True
    #: execution backend by name — "legacy", "fastpath", "stream" or
    #: "vector"; overrides ``fastpath`` when given.  Every engine
    #: produces bit-identical artifacts, so cache keys are engine-free
    #: and warm artifacts are shared across engines.
    engine: str | None = None
    #: worker processes for intra-workload trace sharding on the
    #: vector engine (ignored by the other engines)
    jobs: int = 1
    #: whether this process may use the native (C) kernels.  Resolved
    #: once from the supervisor's per-process env snapshot, never from
    #: ``os.environ`` mid-run — a mid-run env mutation can't produce
    #: mixed-engine chunks within one workload.  Set False explicitly
    #: to pin the pure-Python engines regardless of the snapshot.
    native_enabled: bool | None = None

    def __post_init__(self):
        if self.engine is None:
            self.engine = "fastpath" if self.fastpath else "legacy"
        if self.engine not in ("legacy", "fastpath", "stream", "vector"):
            raise ValueError(f"unknown engine {self.engine!r}")
        self.fastpath = self.engine != "legacy"
        if self.native_enabled is None:
            from repro.fastpath import supervisor
            self.native_enabled = supervisor.native_enabled()
        if self.store is not None:
            # One counter object for the whole pipeline, store included.
            self.store.metrics = self.metrics
        self._options_digest = self.options.digest()
        self._frontend: dict[str, Program] = {}
        self._profile: dict[str, Profile] = {}
        self._compiled: dict[str, CompiledProgram] = {}
        self._execution: dict[str, ExecutionResult] = {}
        self._summary: dict[str, RunSummary] = {}
        # Pre-decoded form and simulator arrays, keyed by compile key:
        # one decode serves the emulation plus every machine's
        # simulation of that compiled program.
        self._decoded: dict[str, DecodedProgram] = {}
        self._prep: dict[str, SimPrep] = {}
        # Vector-backend simulator tables (lazy numpy views over the
        # SimPrep above), keyed the same way.
        self._vprep: dict[str, object] = {}

    # ----- keys ---------------------------------------------------------

    def compile_key(self, workload: Workload, model: Model,
                    machine: MachineDescription) -> str:
        return keys.compile_key(workload.name, workload.source, self.scale,
                                self.max_steps, model.name,
                                self._options_digest,
                                machine.schedule_digest())

    def execution_key(self, workload: Workload, model: Model,
                      machine: MachineDescription) -> str:
        return keys.execution_key(
            self.compile_key(workload, model, machine), self.scale,
            self.max_steps)

    def stats_key(self, workload: Workload, model: Model,
                  machine: MachineDescription) -> str:
        return keys.stats_key(
            self.execution_key(workload, model, machine), machine.digest())

    # ----- stages -------------------------------------------------------

    @staticmethod
    def _adopt_uids(program: Program) -> None:
        """Reserve uid headroom for a program loaded from the store.

        The program's uids were allocated by another process; without
        the reservation, this process's next allocation (tail
        duplication) would collide with them and corrupt the uid-keyed
        address map.
        """
        ensure_uid_headroom(max(
            (inst.uid for fn in program.functions.values()
             for inst in fn.all_instructions()), default=-1))

    def _decoded_for(self, compile_key: str,
                     compiled: CompiledProgram) -> DecodedProgram:
        decoded = self._decoded.get(compile_key)
        if decoded is None:
            decoded = self._decoded[compile_key] = decode_program(
                compiled.program)
        return decoded

    def _prep_for(self, compile_key: str, compiled: CompiledProgram,
                  machine: MachineDescription) -> SimPrep:
        # Keyed by compile key: latency overrides are part of the
        # schedule digest, so every machine mapping to this key
        # resolves the same latency table.
        prep = self._prep.get(compile_key)
        if prep is None:
            prep = self._prep[compile_key] = prepare_sim(
                self._decoded_for(compile_key, compiled),
                compiled.addresses, machine)
        return prep

    def _vprep_for(self, compile_key: str, compiled: CompiledProgram,
                   machine: MachineDescription):
        vprep = self._vprep.get(compile_key)
        if vprep is None:
            from repro.fastpath.vector import VectorSimPrep
            vprep = self._vprep[compile_key] = VectorSimPrep(
                self._prep_for(compile_key, compiled, machine))
        return vprep

    def frontend_program(self, workload: Workload) -> Program:
        """Optimized baseline IR (cached per source)."""
        key = keys.frontend_key(workload.source)
        program = self._frontend.get(key)
        if program is None and self.store is not None:
            program = self.store.get("frontend", key)
            if program is not None:
                self._adopt_uids(program)
        if program is None:
            with self.metrics.timer("frontend"):
                program = frontend(workload.source)
            if self.store is not None:
                self.store.put("frontend", key, program)
        self._frontend[key] = program
        return program

    def profile(self, workload: Workload) -> Profile:
        """Training-run profile for the baseline IR."""
        key = keys.profile_key(workload.name, workload.source, self.scale,
                               self.max_steps)
        profile = self._profile.get(key)
        if profile is None and self.store is not None:
            profile = self.store.get("profile", key)
        if profile is None:
            program = self.frontend_program(workload)
            with self.metrics.timer("profile"):
                profile = Profile.collect(
                    program, inputs=workload.inputs(self.scale),
                    max_steps=self.max_steps)
            if self.store is not None:
                self.store.put("profile", key, profile)
        self._profile[key] = profile
        return profile

    def compiled(self, workload: Workload, model: Model,
                 machine: MachineDescription) -> CompiledProgram:
        """Program compiled for ``model`` on the schedule-relevant
        machine parameters (machines differing only in memory hierarchy
        share the artifact)."""
        key = self.compile_key(workload, model, machine)
        compiled = self._compiled.get(key)
        if compiled is None and self.store is not None:
            compiled = self.store.get("compiled", key)
            if compiled is not None:
                self._adopt_uids(compiled.program)
        if compiled is None:
            base = self.frontend_program(workload)
            profile = self.profile(workload)
            with self.metrics.timer("compile"):
                compiled = compile_for_model(base, model, profile, machine,
                                             self.options)
            if self.store is not None:
                self.store.put("compiled", key, compiled)
        self._compiled[key] = compiled
        return compiled

    def execution(self, workload: Workload, model: Model,
                  machine: MachineDescription) -> ExecutionResult:
        """Emulation trace of the compiled program on its inputs."""
        key = self.execution_key(workload, model, machine)
        execution = self._execution.get(key)
        from_store = False
        if execution is None and self.store is not None:
            execution = self.store.get("execution", key)
            from_store = execution is not None
        if execution is None:
            compiled = self.compiled(workload, model, machine)
            watchdog = None
            if self.wall_clock_budget is not None:
                watchdog = EmulationWatchdog(
                    wall_clock_budget=self.wall_clock_budget)
            with self.metrics.timer("emulate"):
                if self.engine == "vector":
                    from repro.fastpath.native import run_program_native
                    execution = run_program_native(
                        compiled.program,
                        inputs=workload.inputs(self.scale),
                        collect_trace=True, max_steps=self.max_steps,
                        watchdog=watchdog,
                        decoded=self._decoded_for(
                            self.compile_key(workload, model, machine),
                            compiled),
                        native=self.native_enabled)
                elif self.fastpath:
                    execution = run_program_fast(
                        compiled.program,
                        inputs=workload.inputs(self.scale),
                        collect_trace=True, max_steps=self.max_steps,
                        watchdog=watchdog,
                        decoded=self._decoded_for(
                            self.compile_key(workload, model, machine),
                            compiled))
                else:
                    execution = run_program(
                        compiled.program,
                        inputs=workload.inputs(self.scale),
                        collect_trace=True, max_steps=self.max_steps,
                        watchdog=watchdog)
            if self.paranoid:
                check_trace_integrity(execution, compiled.program)
            if self.store is not None:
                self.store.put("execution", key, execution)
        elif from_store and self.paranoid:
            # The envelope digest already proved the bytes are intact;
            # paranoid mode additionally replays the trace against the
            # (cached) program, exactly as it would after emulating.
            check_trace_integrity(
                execution, self.compiled(workload, model, machine).program)
        self._execution[key] = execution
        self._drain_native_counters()
        return execution

    def run_summary(self, workload: Workload, model: Model,
                    machine: MachineDescription) -> RunSummary:
        """Simulate the trace under the *full* machine description.

        On a warm store this is a single artifact load: no compilation,
        no emulation, no simulation.
        """
        key = self.stats_key(workload, model, machine)
        summary = self._summary.get(key)
        if summary is None and self.store is not None:
            summary = self.store.get("stats", key)
        if summary is None:
            compiled = self.compiled(workload, model, machine)
            compile_key = self.compile_key(workload, model, machine)
            if self.engine == "stream" and not self.paranoid:
                # Fused emulate→simulate: the trace never materializes,
                # so no execution artifact is produced (or stored — a
                # trace-less execution must not shadow the shared,
                # engine-free execution key).  Paranoid mode needs the
                # trace for integrity replay and takes the unfused path.
                from repro.fastpath.simulate import \
                    emulate_and_simulate_stream
                watchdog = None
                if self.wall_clock_budget is not None:
                    watchdog = EmulationWatchdog(
                        wall_clock_budget=self.wall_clock_budget)
                execution, stats = emulate_and_simulate_stream(
                    compiled.program, compiled.addresses, machine,
                    inputs=workload.inputs(self.scale),
                    max_steps=self.max_steps, watchdog=watchdog,
                    decoded=self._decoded_for(compile_key, compiled),
                    prep=self._prep_for(compile_key, compiled, machine),
                    metrics=self.metrics)
            else:
                execution = self.execution(workload, model, machine)
                if execution.trace is None:
                    raise TraceIntegrityError(
                        f"{workload.name}/{model.value}: emulation "
                        f"produced no trace")
                with self.metrics.timer("simulate"):
                    trace = execution.trace
                    if isinstance(trace, TraceColumns) \
                            and self.engine == "vector":
                        from repro.fastpath.vector import \
                            simulate_columns_vector
                        stats = simulate_columns_vector(
                            trace,
                            self._vprep_for(compile_key, compiled,
                                            machine),
                            machine, jobs=self.jobs,
                            task_key=machine.schedule_digest(),
                            metrics=self.metrics,
                            native=self.native_enabled)
                    elif isinstance(trace, TraceColumns):
                        stats = simulate_columns(
                            trace,
                            self._prep_for(compile_key, compiled,
                                           machine),
                            machine)
                    else:
                        stats = simulate_trace(trace, compiled.addresses,
                                               machine)
            self.metrics.add_cycles(stats.cycles)
            summary = RunSummary(stats=stats,
                                 return_value=execution.return_value,
                                 static_size=compiled.static_size)
            if self.store is not None:
                self.store.put("stats", key, summary)
        self._summary[key] = summary
        self._drain_native_counters()
        return summary

    def _drain_native_counters(self) -> None:
        """Fold the supervisor's degradation telemetry into this run's
        metrics, so demotions reach ``BENCH_pipeline.json`` and — via
        the workers' ``to_dict`` round-trip — the service breaker."""
        from repro.fastpath import supervisor
        supervisor.drain_into(self.metrics)
