"""DAG job scheduler over a process pool.

Jobs carry dependency edges (compile+emulate must precede each
trace x machine simulation); the scheduler dispatches every job whose
dependencies are satisfied to a :class:`~concurrent.futures.\
ProcessPoolExecutor`, collects results as they finish, and contains
three failure classes:

* **transient typed failures** — a worker raised something the
  recovery policy classifies as retryable (corrupt-artifact read,
  emulation timeout, disk-full ``OSError``; see
  :mod:`repro.engine.recovery.retry`); the job is re-queued with capped
  exponential backoff and deterministic jitter, up to
  ``retry.max_attempts`` total tries, and only the *final* failure is
  recorded;
* **permanent typed failures** — a worker raised a deterministic error
  (``CompileError`` and friends pickle back across the pool); the job
  is recorded as failed immediately and its transitive dependents are
  *skipped*, mirroring the experiment suite's ``degrade`` quarantine;
* **worker crashes** — a worker died (segfault, ``os._exit``, OOM
  kill), which poisons the whole pool.  The pool is rebuilt (counted in
  ``PipelineMetrics.pool_rebuilds``) and, after repeated breakages,
  *shrunk* one worker at a time (floor 1) with a structured warning —
  degraded throughput beats an aborted DAG.  A breakage with several
  jobs in flight is ambiguous, so it is counted against *nobody*: every
  in-flight job becomes a suspect and is retried one at a time, so the
  next breakage unambiguously identifies the culprit.  A job that
  breaks the pool ``_MAX_CRASHES`` times while running alone is
  recorded as crashed (``JobFailure.crashed``); its dependents are
  skipped and everything else completes.

``on_complete`` (when given) fires in the parent for every successful
job *as it finishes* — the hook the run journal uses to make progress
durable before the suite moves on, so a SIGKILL of the whole suite
loses at most the jobs completed after the last journal fsync.

``max_workers <= 1`` executes in-process in topological order with the
same failure and retry semantics — the serial path needs no pool, no
pickling and no subprocess startup cost.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import FIRST_COMPLETED, Future, \
    ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.metrics import PipelineMetrics
from repro.engine.recovery.retry import RetryPolicy, is_transient
from repro.robustness.errors import classify_exception

logger = logging.getLogger("repro.engine.scheduler")

#: a job breaking the pool this many times *while running alone* is
#: declared the culprit (the first solo crash earns one retry, so a
#: transient worker death does not condemn a healthy job)
_MAX_CRASHES = 2


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work.

    ``fn`` must be a module-level callable (the pool pickles it by
    reference) and ``args`` must be picklable.  ``workload`` and
    ``stage`` annotate failures for the suite's degrade reports;
    ``artifacts`` lists the ``(kind, key)`` pairs the job persists, so
    the run journal can record verified completion.
    """

    job_id: str
    fn: Callable[..., Any]
    args: tuple = ()
    deps: tuple[str, ...] = ()
    workload: str | None = None
    stage: str = "job"
    artifacts: tuple[tuple[str, str], ...] = ()


@dataclass
class JobFailure:
    """Terminal outcome of a failed or crashed job."""

    job_id: str
    workload: str | None
    stage: str
    error_type: str
    message: str
    crashed: bool = False
    #: the original exception, for strict-mode re-raise (None on crash)
    exception: BaseException | None = None
    #: total attempts consumed (1 = failed on the first try)
    attempts: int = 1
    #: the recovery policy classified this failure as retryable (it
    #: still exhausted its attempts)
    transient: bool = False


@dataclass
class SchedulerOutcome:
    """Everything the caller learns from one DAG execution."""

    results: dict[str, Any] = field(default_factory=dict)
    failures: list[JobFailure] = field(default_factory=list)
    #: job_id -> failed job that (transitively) caused the skip
    skipped: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.skipped


def _validate(jobs: list[Job]) -> dict[str, Job]:
    by_id: dict[str, Job] = {}
    for job in jobs:
        if job.job_id in by_id:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        by_id[job.job_id] = job
    for job in jobs:
        for dep in job.deps:
            if dep not in by_id:
                raise ValueError(
                    f"job {job.job_id!r} depends on unknown job {dep!r}")
    # Kahn's algorithm for cycle detection (also yields the serial order).
    return by_id


def _topo_order(by_id: dict[str, Job]) -> list[Job]:
    pending = {jid: len(job.deps) for jid, job in by_id.items()}
    dependents: dict[str, list[str]] = {jid: [] for jid in by_id}
    for job in by_id.values():
        for dep in job.deps:
            dependents[dep].append(job.job_id)
    ready = [jid for jid, n in pending.items() if n == 0]
    order: list[Job] = []
    while ready:
        jid = ready.pop()
        order.append(by_id[jid])
        for succ in dependents[jid]:
            pending[succ] -= 1
            if pending[succ] == 0:
                ready.append(succ)
    if len(order) != len(by_id):
        cyclic = sorted(jid for jid, n in pending.items() if n > 0)
        raise ValueError(f"job graph has a cycle through {cyclic}")
    return order


def _skip_dependents(job_id: str, by_id: dict[str, Job],
                     outcome: SchedulerOutcome) -> None:
    """Transitively mark every dependent of ``job_id`` as skipped."""
    frontier = [job_id]
    while frontier:
        failed = frontier.pop()
        for job in by_id.values():
            if failed in job.deps and job.job_id not in outcome.skipped \
                    and job.job_id not in outcome.results:
                outcome.skipped[job.job_id] = job_id
                frontier.append(job.job_id)


def _record_failure(job: Job, exc: BaseException,
                    outcome: SchedulerOutcome, crashed: bool = False,
                    attempts: int = 1) -> None:
    outcome.failures.append(JobFailure(
        job_id=job.job_id, workload=job.workload, stage=job.stage,
        error_type=type(exc).__name__ if not crashed else "WorkerCrash",
        message=str(exc), crashed=crashed,
        exception=None if crashed else exc, attempts=attempts,
        transient=crashed or is_transient(exc)))


def execute_jobs(jobs: list[Job], max_workers: int = 1,
                 retry: RetryPolicy | None = None,
                 metrics: PipelineMetrics | None = None,
                 on_complete: Callable[[Job, Any], None] | None = None
                 ) -> SchedulerOutcome:
    """Run a job DAG; never raises for job failures, only misuse."""
    by_id = _validate(jobs)
    order = _topo_order(by_id)
    if retry is None:
        retry = RetryPolicy()
    if metrics is None:
        metrics = PipelineMetrics()
    if max_workers <= 1 or len(jobs) <= 1:
        return _execute_serial(order, by_id, retry, metrics, on_complete)
    return _execute_pool(order, by_id, max_workers, retry, metrics,
                         on_complete)


def _execute_serial(order: list[Job], by_id: dict[str, Job],
                    retry: RetryPolicy, metrics: PipelineMetrics,
                    on_complete: Callable[[Job, Any], None] | None
                    ) -> SchedulerOutcome:
    outcome = SchedulerOutcome()
    for job in order:
        # _skip_dependents marks the transitive closure of a failure,
        # so one membership test covers failed deps at any distance.
        if job.job_id in outcome.skipped:
            continue
        attempt = 0
        while True:
            attempt += 1
            try:
                result = job.fn(*job.args)
            except Exception as raw:
                # Classify, don't swallow: everything downstream (the
                # failure record, the journal, the service's error
                # mapping) sees a typed taxonomy member, never a stray
                # KeyError out of a pass.
                exc = classify_exception(raw)
                if retry.should_retry(exc, attempt):
                    backoff = retry.backoff(job.job_id, attempt)
                    metrics.record_retry(backoff)
                    logger.warning(
                        "retrying job after transient failure: "
                        "job=%s attempt=%d error=%s backoff=%.3fs",
                        job.job_id, attempt, type(exc).__name__, backoff)
                    time.sleep(backoff)
                    continue
                _record_failure(job, exc, outcome, attempts=attempt)
                _skip_dependents(job.job_id, by_id, outcome)
                break
            outcome.results[job.job_id] = result
            if on_complete is not None:
                on_complete(job, result)
            break
    return outcome


def _execute_pool(order: list[Job], by_id: dict[str, Job],
                  max_workers: int, retry: RetryPolicy,
                  metrics: PipelineMetrics,
                  on_complete: Callable[[Job, Any], None] | None
                  ) -> SchedulerOutcome:
    outcome = SchedulerOutcome()
    remaining = set(by_id)
    #: pool breakages observed while the job ran *alone* in the pool
    crash_counts: dict[str, int] = {}
    #: jobs to retry one at a time after an ambiguous group breakage
    suspects: list[str] = []
    #: (ready_time, job_id) for transient failures in their backoff
    backoff_queue: list[tuple[float, str]] = []
    waiting_backoff: set[str] = set()
    attempts: dict[str, int] = {}
    pool_breakages = 0
    workers = max_workers
    executor = ProcessPoolExecutor(max_workers=workers)
    in_flight: dict[Future, Job] = {}

    def submit(job: Job) -> None:
        attempts[job.job_id] = attempts.get(job.job_id, 0) + 1
        in_flight[executor.submit(job.fn, *job.args)] = job

    def dispatch() -> None:
        now = time.monotonic()
        # Backed-off retries whose delay elapsed go first: they already
        # held a slot in a previous attempt and their dependents wait.
        for entry in sorted(backoff_queue):
            ready_at, jid = entry
            if ready_at > now:
                break
            backoff_queue.remove(entry)
            waiting_backoff.discard(jid)
            if jid in remaining and jid not in outcome.skipped:
                submit(by_id[jid])
        # Quarantine mode: retry suspects one at a time, so a breakage
        # is only ever attributed to a job that was running alone.
        while suspects:
            if in_flight:
                return
            jid = suspects.pop(0)
            if jid in remaining and jid not in outcome.skipped:
                submit(by_id[jid])
                return
        # Normal mode: dispatch every job whose dependencies succeeded.
        launched = {job.job_id for job in in_flight.values()}
        for job in order:
            if job.job_id not in remaining \
                    or job.job_id in launched \
                    or job.job_id in outcome.skipped \
                    or job.job_id in waiting_backoff:
                continue
            if all(dep in outcome.results for dep in job.deps):
                submit(job)

    def rebuild_pool() -> None:
        nonlocal executor, workers, pool_breakages
        pool_breakages += 1
        metrics.pool_rebuilds += 1
        executor.shutdown(wait=False, cancel_futures=True)
        if pool_breakages > 1 and workers > 1:
            workers -= 1
            logger.warning(
                "worker pool degraded after repeated crashes: "
                "breakages=%d workers=%d (was %d)",
                pool_breakages, workers, max_workers)
        else:
            logger.warning(
                "worker pool rebuilt after a crash: breakages=%d "
                "workers=%d", pool_breakages, workers)
        executor = ProcessPoolExecutor(max_workers=workers)

    def next_backoff_delta() -> float | None:
        if not backoff_queue:
            return None
        return max(0.0, min(t for t, _ in backoff_queue)
                   - time.monotonic())

    try:
        while True:
            dispatch()
            if not in_flight:
                delta = next_backoff_delta()
                if delta is None:
                    break
                time.sleep(delta)
                continue
            done, _ = wait(in_flight, timeout=next_backoff_delta(),
                           return_when=FIRST_COMPLETED)
            pool_broken = False
            requeue: list[Job] = []
            for future in done:
                job = in_flight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    requeue.append(job)
                except Exception as raw:
                    exc = classify_exception(raw)
                    attempt = attempts.get(job.job_id, 1)
                    if retry.should_retry(exc, attempt):
                        backoff = retry.backoff(job.job_id, attempt)
                        metrics.record_retry(backoff)
                        logger.warning(
                            "retrying job after transient failure: "
                            "job=%s attempt=%d error=%s backoff=%.3fs",
                            job.job_id, attempt, type(exc).__name__,
                            backoff)
                        backoff_queue.append(
                            (time.monotonic() + backoff, job.job_id))
                        waiting_backoff.add(job.job_id)
                    else:
                        remaining.discard(job.job_id)
                        _record_failure(job, exc, outcome,
                                        attempts=attempt)
                        _skip_dependents(job.job_id, by_id, outcome)
                else:
                    outcome.results[job.job_id] = result
                    remaining.discard(job.job_id)
                    if on_complete is not None:
                        on_complete(job, result)
            if pool_broken:
                # The pool is poisoned: every other in-flight future is
                # doomed too.  Gather them all, then triage.
                requeue.extend(in_flight.values())
                in_flight.clear()
                rebuild_pool()
                if len(requeue) == 1:
                    # Unambiguous: this job was alone when the pool died.
                    job = requeue[0]
                    crash_counts[job.job_id] = \
                        crash_counts.get(job.job_id, 0) + 1
                    if crash_counts[job.job_id] >= _MAX_CRASHES:
                        remaining.discard(job.job_id)
                        outcome.failures.append(JobFailure(
                            job_id=job.job_id, workload=job.workload,
                            stage=job.stage, error_type="WorkerCrash",
                            message=f"worker crashed while running "
                                    f"{job.job_id} ({crash_counts[job.job_id]}"
                                    f" solo pool breakages)", crashed=True,
                            attempts=attempts.get(job.job_id, 1),
                            transient=True))
                        _skip_dependents(job.job_id, by_id, outcome)
                    else:
                        suspects.append(job.job_id)
                else:
                    # Ambiguous: quarantine everyone, counting nothing —
                    # an innocent job co-resident with a killer must
                    # never be blamed for the killer's breakage.
                    suspects.extend(job.job_id for job in requeue)
        return outcome
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
