"""DAG job scheduler over a process pool.

Jobs carry dependency edges (compile+emulate must precede each
trace x machine simulation); the scheduler dispatches every job whose
dependencies are satisfied to a :class:`~concurrent.futures.\
ProcessPoolExecutor`, collects results as they finish, and contains two
failure classes:

* **typed failures** — a worker raised (``ReproError`` and friends
  pickle back across the pool); the job is recorded as failed and its
  transitive dependents are *skipped*, mirroring the experiment suite's
  ``degrade`` quarantine;
* **worker crashes** — a worker died (segfault, ``os._exit``, OOM
  kill), which poisons the whole pool.  A breakage with several jobs in
  flight is ambiguous, so it is counted against *nobody*: every
  in-flight job becomes a suspect and is retried one at a time in a
  fresh pool, so the next breakage unambiguously identifies the
  culprit.  A job that breaks the pool ``_MAX_CRASHES`` times while
  running alone is recorded as crashed (``JobFailure.crashed``); its
  dependents are skipped and everything else completes.

``max_workers <= 1`` executes in-process in topological order with the
same failure semantics — the serial path needs no pool, no pickling and
no subprocess startup cost.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, \
    ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

#: a job breaking the pool this many times *while running alone* is
#: declared the culprit (the first solo crash earns one retry, so a
#: transient worker death does not condemn a healthy job)
_MAX_CRASHES = 2


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work.

    ``fn`` must be a module-level callable (the pool pickles it by
    reference) and ``args`` must be picklable.  ``workload`` and
    ``stage`` annotate failures for the suite's degrade reports.
    """

    job_id: str
    fn: Callable[..., Any]
    args: tuple = ()
    deps: tuple[str, ...] = ()
    workload: str | None = None
    stage: str = "job"


@dataclass
class JobFailure:
    """Terminal outcome of a failed or crashed job."""

    job_id: str
    workload: str | None
    stage: str
    error_type: str
    message: str
    crashed: bool = False
    #: the original exception, for strict-mode re-raise (None on crash)
    exception: BaseException | None = None


@dataclass
class SchedulerOutcome:
    """Everything the caller learns from one DAG execution."""

    results: dict[str, Any] = field(default_factory=dict)
    failures: list[JobFailure] = field(default_factory=list)
    #: job_id -> failed job that (transitively) caused the skip
    skipped: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.skipped


def _validate(jobs: list[Job]) -> dict[str, Job]:
    by_id: dict[str, Job] = {}
    for job in jobs:
        if job.job_id in by_id:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        by_id[job.job_id] = job
    for job in jobs:
        for dep in job.deps:
            if dep not in by_id:
                raise ValueError(
                    f"job {job.job_id!r} depends on unknown job {dep!r}")
    # Kahn's algorithm for cycle detection (also yields the serial order).
    return by_id


def _topo_order(by_id: dict[str, Job]) -> list[Job]:
    pending = {jid: len(job.deps) for jid, job in by_id.items()}
    dependents: dict[str, list[str]] = {jid: [] for jid in by_id}
    for job in by_id.values():
        for dep in job.deps:
            dependents[dep].append(job.job_id)
    ready = [jid for jid, n in pending.items() if n == 0]
    order: list[Job] = []
    while ready:
        jid = ready.pop()
        order.append(by_id[jid])
        for succ in dependents[jid]:
            pending[succ] -= 1
            if pending[succ] == 0:
                ready.append(succ)
    if len(order) != len(by_id):
        cyclic = sorted(jid for jid, n in pending.items() if n > 0)
        raise ValueError(f"job graph has a cycle through {cyclic}")
    return order


def _skip_dependents(job_id: str, by_id: dict[str, Job],
                     outcome: SchedulerOutcome) -> None:
    """Transitively mark every dependent of ``job_id`` as skipped."""
    frontier = [job_id]
    while frontier:
        failed = frontier.pop()
        for job in by_id.values():
            if failed in job.deps and job.job_id not in outcome.skipped \
                    and job.job_id not in outcome.results:
                outcome.skipped[job.job_id] = job_id
                frontier.append(job.job_id)


def _record_failure(job: Job, exc: BaseException,
                    outcome: SchedulerOutcome, crashed: bool = False
                    ) -> None:
    outcome.failures.append(JobFailure(
        job_id=job.job_id, workload=job.workload, stage=job.stage,
        error_type=type(exc).__name__ if not crashed else "WorkerCrash",
        message=str(exc), crashed=crashed,
        exception=None if crashed else exc))


def execute_jobs(jobs: list[Job], max_workers: int = 1
                 ) -> SchedulerOutcome:
    """Run a job DAG; never raises for job failures, only misuse."""
    by_id = _validate(jobs)
    order = _topo_order(by_id)
    if max_workers <= 1 or len(jobs) <= 1:
        return _execute_serial(order, by_id)
    return _execute_pool(order, by_id, max_workers)


def _execute_serial(order: list[Job], by_id: dict[str, Job]
                    ) -> SchedulerOutcome:
    outcome = SchedulerOutcome()
    for job in order:
        # _skip_dependents marks the transitive closure of a failure,
        # so one membership test covers failed deps at any distance.
        if job.job_id in outcome.skipped:
            continue
        try:
            outcome.results[job.job_id] = job.fn(*job.args)
        except Exception as exc:
            _record_failure(job, exc, outcome)
            _skip_dependents(job.job_id, by_id, outcome)
    return outcome


def _execute_pool(order: list[Job], by_id: dict[str, Job],
                  max_workers: int) -> SchedulerOutcome:
    outcome = SchedulerOutcome()
    remaining = set(by_id)
    #: pool breakages observed while the job ran *alone* in the pool
    crash_counts: dict[str, int] = {}
    #: jobs to retry one at a time after an ambiguous group breakage
    suspects: list[str] = []
    executor = ProcessPoolExecutor(max_workers=max_workers)
    in_flight: dict[Future, Job] = {}

    def dispatch() -> None:
        # Quarantine mode: retry suspects one at a time, so a breakage
        # is only ever attributed to a job that was running alone.
        while suspects:
            if in_flight:
                return
            jid = suspects.pop(0)
            if jid in remaining and jid not in outcome.skipped:
                job = by_id[jid]
                in_flight[executor.submit(job.fn, *job.args)] = job
                return
        # Normal mode: dispatch every job whose dependencies succeeded.
        launched = {job.job_id for job in in_flight.values()}
        for job in order:
            if job.job_id not in remaining \
                    or job.job_id in launched \
                    or job.job_id in outcome.skipped:
                continue
            if all(dep in outcome.results for dep in job.deps):
                in_flight[executor.submit(job.fn, *job.args)] = job

    try:
        while True:
            dispatch()
            if not in_flight:
                break
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            pool_broken = False
            requeue: list[Job] = []
            for future in done:
                job = in_flight.pop(future)
                try:
                    outcome.results[job.job_id] = future.result()
                    remaining.discard(job.job_id)
                except BrokenProcessPool:
                    pool_broken = True
                    requeue.append(job)
                except Exception as exc:
                    remaining.discard(job.job_id)
                    _record_failure(job, exc, outcome)
                    _skip_dependents(job.job_id, by_id, outcome)
            if pool_broken:
                # The pool is poisoned: every other in-flight future is
                # doomed too.  Gather them all, then triage.
                requeue.extend(in_flight.values())
                in_flight.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(max_workers=max_workers)
                if len(requeue) == 1:
                    # Unambiguous: this job was alone when the pool died.
                    job = requeue[0]
                    crash_counts[job.job_id] = \
                        crash_counts.get(job.job_id, 0) + 1
                    if crash_counts[job.job_id] >= _MAX_CRASHES:
                        remaining.discard(job.job_id)
                        outcome.failures.append(JobFailure(
                            job_id=job.job_id, workload=job.workload,
                            stage=job.stage, error_type="WorkerCrash",
                            message=f"worker crashed while running "
                                    f"{job.job_id} ({crash_counts[job.job_id]}"
                                    f" solo pool breakages)", crashed=True))
                        _skip_dependents(job.job_id, by_id, outcome)
                    else:
                        suspects.append(job.job_id)
                else:
                    # Ambiguous: quarantine everyone, counting nothing —
                    # an innocent job co-resident with a killer must
                    # never be blamed for the killer's breakage.
                    suspects.extend(job.job_id for job in requeue)
        return outcome
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
