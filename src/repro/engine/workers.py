"""Module-level job functions executed inside pool workers.

Each worker builds a short-lived :class:`PipelineContext` over the
shared on-disk store, performs one pipeline stage, and returns only its
metrics counters — the artifact itself stays on disk, so nothing large
crosses the process boundary.  Specs are plain frozen dataclasses of
picklable values (workload *names*, not objects: input builders are
closures and the registry is re-imported in the worker).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.stages import PipelineContext
from repro.engine.store import ArtifactStore
from repro.machine.descriptor import MachineDescription
from repro.toolchain import Model, ToolchainOptions
from repro.workloads.base import get_workload


@dataclass(frozen=True)
class JobSpec:
    """Everything a worker needs to rebuild the pipeline context."""

    cache_dir: str
    workload: str
    model_name: str
    machine: MachineDescription
    scale: float
    options: ToolchainOptions
    max_steps: int
    paranoid: bool = False
    wall_clock_budget: float | None = None
    #: execution backend ("legacy"/"fastpath"/"stream"/"vector");
    #: workers never shard further (jobs stays 1 — they already run
    #: inside the pool)
    engine: str = "fastpath"

    def context(self) -> PipelineContext:
        return PipelineContext(
            scale=self.scale, options=self.options,
            max_steps=self.max_steps, paranoid=self.paranoid,
            wall_clock_budget=self.wall_clock_budget,
            store=ArtifactStore(self.cache_dir),
            engine=self.engine)


def _finish(ctx: PipelineContext) -> dict:
    """Serialize a worker context's counters for the parent's merge.

    Drains the native-engine supervisor first, so a demotion that
    happened in this worker process rides the same ``to_dict`` →
    ``merge_dict`` round-trip as every other counter and reaches the
    parent's ``BENCH_pipeline.json`` and the service breaker.
    """
    from repro.fastpath import supervisor
    supervisor.drain_into(ctx.metrics)
    return ctx.metrics.to_dict()


def prepare_workload(spec: JobSpec) -> dict:
    """Stage 1: frontend + profile for one workload (model-agnostic)."""
    ctx = spec.context()
    ctx.profile(get_workload(spec.workload))
    return _finish(ctx)


def compile_emulate(spec: JobSpec) -> dict:
    """Stage 2: compile for one model + emulate to a trace."""
    ctx = spec.context()
    workload = get_workload(spec.workload)
    model = Model[spec.model_name]
    ctx.compiled(workload, model, spec.machine)
    ctx.execution(workload, model, spec.machine)
    return _finish(ctx)


def simulate(spec: JobSpec) -> dict:
    """Stage 3: cycle-simulate the trace under the full machine."""
    ctx = spec.context()
    workload = get_workload(spec.workload)
    ctx.run_summary(workload, Model[spec.model_name], spec.machine)
    return _finish(ctx)
