"""Execution engine: content-addressed artifact cache + job scheduler.

The experiment pipeline has three expensive stages per (workload, model,
machine) triple — compile, emulate, simulate — and the paper's own
methodology (Section 4.1) amortizes one emulation across many machine
configurations.  This package makes that amortization durable and
parallel:

* :mod:`repro.engine.keys` — stable content digests for every pipeline
  input, so artifacts are addressed by *what produced them*;
* :mod:`repro.engine.serialize` — a versioned, digest-verified envelope
  for programs, traces and statistics crossing process/disk boundaries;
* :mod:`repro.engine.store` — the content-addressed on-disk store with
  atomic writes and load-time corruption detection;
* :mod:`repro.engine.stages` — the memoized, store-backed pipeline the
  experiment suite and the pool workers share;
* :mod:`repro.engine.scheduler` — a DAG job scheduler over a process
  pool with worker-crash containment;
* :mod:`repro.engine.metrics` — per-stage wall time and cache hit/miss
  counters, dumped as ``BENCH_pipeline.json``.
"""

from repro.engine.keys import SCHEMA_VERSION, stable_digest
from repro.engine.metrics import PipelineMetrics
from repro.engine.scheduler import Job, JobFailure, SchedulerOutcome, \
    execute_jobs
from repro.engine.stages import PipelineContext, RunSummary
from repro.engine.store import ArtifactStore

__all__ = [
    "SCHEMA_VERSION", "stable_digest", "PipelineMetrics", "Job",
    "JobFailure", "SchedulerOutcome", "execute_jobs", "PipelineContext",
    "RunSummary", "ArtifactStore",
]
