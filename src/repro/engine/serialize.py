"""Versioned, digest-verified serialization of pipeline artifacts.

Programs, traces and statistics cross process boundaries (the scheduler's
pool workers) and disk boundaries (the artifact store).  Every payload
travels inside the same envelope::

    RPRO <header-length:4 BE> <header JSON> <pickle body>

The header records the repro schema version, the artifact kind and the
SHA-256 of the body; :func:`unpack` re-hashes the body on every load and
raises :class:`~repro.robustness.errors.TraceIntegrityError` on any
mismatch — a flipped bit in a cached trace must never silently become a
published cycle count.

Pickle is safe here because the store is a local, trusted cache keyed by
our own digests; the envelope exists to catch *corruption and version
skew*, not adversaries.  Instruction ``uid``s are plain data, so a
program and a trace serialized separately still agree on the uid ->
address mapping after loading.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
from typing import Any

from repro.engine.keys import KINDS, SCHEMA_VERSION
from repro.ir.function import Program
from repro.ir.printer import format_program
from repro.robustness.errors import TraceIntegrityError

MAGIC = b"RPRO"
#: protocol 4 is supported by every Python this repo targets (3.10+)
_PICKLE_PROTOCOL = 4


def pack(kind: str, payload: Any) -> bytes:
    """Wrap ``payload`` in the versioned, digest-carrying envelope."""
    if kind not in KINDS:
        raise ValueError(f"unknown artifact kind {kind!r} "
                         f"(expected one of {KINDS})")
    body = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
    header = json.dumps({
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "sha256": hashlib.sha256(body).hexdigest(),
        "length": len(body),
    }, sort_keys=True).encode()
    return b"".join([MAGIC, len(header).to_bytes(4, "big"), header, body])


def unpack(blob: bytes, expect_kind: str | None = None) -> Any:
    """Verify the envelope and return the payload.

    Raises :class:`TraceIntegrityError` on a bad magic, an unparsable or
    truncated envelope, a schema-version mismatch, a kind mismatch, or a
    body whose SHA-256 differs from the recorded one.
    """
    if len(blob) < 8 or blob[:4] != MAGIC:
        raise TraceIntegrityError(
            "artifact is not in the repro envelope format (bad magic)")
    header_len = int.from_bytes(blob[4:8], "big")
    header_end = 8 + header_len
    if header_end > len(blob):
        raise TraceIntegrityError("artifact header is truncated")
    try:
        header = json.loads(blob[8:header_end])
    except ValueError as exc:
        raise TraceIntegrityError(
            f"artifact header is not valid JSON: {exc}") from exc
    if header.get("schema") != SCHEMA_VERSION:
        raise TraceIntegrityError(
            f"artifact was written by schema version "
            f"{header.get('schema')!r}, this build expects "
            f"{SCHEMA_VERSION}")
    if expect_kind is not None and header.get("kind") != expect_kind:
        raise TraceIntegrityError(
            f"artifact kind mismatch: stored {header.get('kind')!r}, "
            f"expected {expect_kind!r}")
    body = blob[header_end:]
    if len(body) != header.get("length"):
        raise TraceIntegrityError(
            f"artifact body is {len(body)} bytes but the envelope "
            f"recorded {header.get('length')}")
    digest = hashlib.sha256(body).hexdigest()
    if digest != header.get("sha256"):
        raise TraceIntegrityError(
            f"artifact body digest {digest[:16]}... does not match the "
            f"envelope's {str(header.get('sha256'))[:16]}... (corrupted "
            f"artifact)")
    try:
        return _restricted_loads(body)
    except Exception as exc:
        raise TraceIntegrityError(
            f"artifact body failed to deserialize: {exc}") from exc


class _ReproUnpickler(pickle.Unpickler):
    """Only resolve classes from this package (and stdlib builtins).

    The cache is trusted, but restricting the import surface makes a
    corrupted-yet-digest-valid artifact (i.e. a bug on our side) fail
    loudly instead of importing arbitrary modules.
    """

    _ALLOWED_PREFIXES = ("repro.", "builtins", "collections")

    def find_class(self, module: str, name: str):
        if module.startswith(self._ALLOWED_PREFIXES) or module in (
                "builtins", "collections"):
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"artifact references disallowed global {module}.{name}")


def _restricted_loads(body: bytes) -> Any:
    return _ReproUnpickler(io.BytesIO(body)).load()


def program_fingerprint(program: Program) -> str:
    """Digest of a program's full printable form plus instruction uids.

    Two programs with equal fingerprints are the same code with the same
    trace-correlation identities — the round-trip property the artifact
    cache relies on (``Program`` itself has identity equality only).
    """
    hasher = hashlib.sha256()
    hasher.update(format_program(program).encode())
    for fn in program.functions.values():
        for inst in fn.all_instructions():
            hasher.update(inst.uid.to_bytes(8, "big", signed=False))
    for g in program.globals.values():
        hasher.update(repr((g.name, g.elem_size, g.count, g.init,
                            g.is_float)).encode())
    return hasher.hexdigest()
