"""Per-stage observability for the experiment pipeline.

A :class:`PipelineMetrics` instance rides along the pipeline (suite,
store, pool workers) and accumulates wall time per stage, cache hit/miss
counters per artifact kind, and simulation volume.  Workers serialize
their counters with :meth:`PipelineMetrics.to_dict` and the parent folds
them back in with :meth:`PipelineMetrics.merge_dict`, so one object
always holds the whole run's totals — the source of both the report
summary block and ``BENCH_pipeline.json``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.engine.keys import KINDS, SCHEMA_VERSION

#: pipeline stages with timed compute
STAGES = ("frontend", "profile", "compile", "emulate", "simulate")


@dataclass
class StageMetrics:
    """Compute work actually performed for one stage (misses only)."""

    invocations: int = 0
    wall_seconds: float = 0.0


@dataclass
class CacheMetrics:
    """Store traffic for one artifact kind."""

    hits: int = 0
    misses: int = 0
    #: artifact bytes served from the store (envelope included)
    bytes_read: int = 0
    #: artifact bytes persisted to the store (envelope included)
    bytes_written: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class PipelineMetrics:
    """Wall time, cache traffic and simulation volume for one run."""

    stages: dict[str, StageMetrics] = field(
        default_factory=lambda: {s: StageMetrics() for s in STAGES})
    cache: dict[str, CacheMetrics] = field(
        default_factory=lambda: {k: CacheMetrics() for k in KINDS})
    total_cycles_simulated: int = 0
    jobs_dispatched: int = 0
    worker_crashes: int = 0
    #: transient-failure retries performed by the scheduler
    task_retries: int = 0
    #: total seconds slept in retry backoff (recovery overhead)
    retry_backoff_seconds: float = 0.0
    #: corrupt artifacts moved to quarantine (reads, resume, fsck)
    quarantined_artifacts: int = 0
    #: process pools rebuilt after a worker crash poisoned one
    pool_rebuilds: int = 0
    #: differential fuzz cases executed (see :mod:`repro.fuzz`)
    fuzz_cases: int = 0
    #: fuzz cases that produced a finding (pre-dedupe)
    fuzz_findings: int = 0
    #: distinct triage signatures among the findings
    fuzz_unique_findings: int = 0
    #: campaign wall time (generate + execute + triage + reduce)
    fuzz_seconds: float = 0.0
    #: experiment-service submissions accepted into the admission queue
    jobs_admitted: int = 0
    #: submissions rejected by load shedding (queue full / draining)
    jobs_shed: int = 0
    #: submissions coalesced onto an identical in-flight/completed job
    #: by single-flight dedup (they consumed no compute)
    jobs_deduped: int = 0
    #: worker-pool circuit breaker transitions to the open state
    breaker_trips: int = 0
    #: service jobs that reached a terminal state (done or failed)
    service_jobs_done: int = 0
    #: total service job execution wall time (queue wait excluded)
    service_seconds: float = 0.0
    #: trace chunks consumed by the vector simulation backend (see
    #: :mod:`repro.fastpath.vector`); stays 0 on the other engines
    vector_chunks_total: int = 0
    #: design-space sweep points evaluated (see :mod:`repro.sweep`)
    sweep_points_total: int = 0
    #: sweep points served entirely from the artifact store (no
    #: compile/emulate/simulate performed)
    sweep_points_cached: int = 0
    #: sweep campaign wall time (expand + fan-out + aggregate)
    sweep_seconds: float = 0.0
    #: cluster shards whose lease was broken (dead worker) and re-issued
    shards_reassigned: int = 0
    #: zombie lease operations rejected by a higher fencing epoch
    leases_fenced: int = 0
    #: straggler shards duplicated near campaign end (first commit wins)
    hedged_shards: int = 0
    #: campaign workers declared dead after missed heartbeats
    workers_lost: int = 0
    #: engine-ladder demotions (native→jitc→interpreter) recorded by
    #: the native-engine supervisor (see :mod:`repro.fastpath.supervisor`)
    engine_demotions: int = 0
    #: golden-trace parity canary failures (the ``.so`` was quarantined)
    native_parity_failures: int = 0
    #: native kernel crashes caught (sandbox canary signal deaths and
    #: mid-run kernel faults); feeds the service breaker's crash evidence
    native_kernel_crashes: int = 0
    #: kernel shared objects quarantined by digest verification / fsck
    kernel_cache_quarantined: int = 0
    #: optional per-stage cProfile collector (see
    #: :mod:`repro.engine.profiling`); attached by the CLI's
    #: ``--profile`` flag, never serialized
    profiler: object | None = field(default=None, repr=False, compare=False)

    # ----- recording ----------------------------------------------------

    @contextmanager
    def timer(self, stage: str):
        start = time.perf_counter()
        profiler = self.profiler
        try:
            if profiler is not None:
                with profiler.record(stage):
                    yield
            else:
                yield
        finally:
            m = self.stages[stage]
            m.invocations += 1
            m.wall_seconds += time.perf_counter() - start

    def record_hit(self, kind: str, nbytes: int = 0) -> None:
        c = self.cache[kind]
        c.hits += 1
        c.bytes_read += nbytes

    def record_miss(self, kind: str) -> None:
        self.cache[kind].misses += 1

    def record_write(self, kind: str, nbytes: int) -> None:
        self.cache[kind].bytes_written += nbytes

    def add_cycles(self, cycles: int) -> None:
        self.total_cycles_simulated += cycles

    def record_stage(self, stage: str, seconds: float,
                     invocations: int = 1) -> None:
        """Credit pre-measured wall time to a stage.

        The fused engines (stream, vector) interleave emulation and
        simulation inside one call, so they time the simulator feeds
        themselves and report the split here instead of via
        :meth:`timer`.
        """
        m = self.stages.setdefault(stage, StageMetrics())
        m.invocations += invocations
        m.wall_seconds += seconds

    def record_retry(self, backoff_seconds: float) -> None:
        self.task_retries += 1
        self.retry_backoff_seconds += backoff_seconds

    def record_quarantine(self, kind: str) -> None:  # noqa: ARG002
        self.quarantined_artifacts += 1

    def record_fuzz(self, cases: int, findings: int,
                    unique_findings: int, seconds: float) -> None:
        self.fuzz_cases += cases
        self.fuzz_findings += findings
        self.fuzz_unique_findings += unique_findings
        self.fuzz_seconds += seconds

    def record_service_job(self, seconds: float) -> None:
        self.service_jobs_done += 1
        self.service_seconds += seconds

    def record_sweep(self, points: int, cached: int,
                     seconds: float) -> None:
        self.sweep_points_total += points
        self.sweep_points_cached += cached
        self.sweep_seconds += seconds

    # ----- aggregation --------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(c.hits for c in self.cache.values())

    @property
    def cache_misses(self) -> int:
        return sum(c.misses for c in self.cache.values())

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def compute_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.stages.values())

    @property
    def fuzz_cases_per_second(self) -> float:
        if self.fuzz_seconds <= 0:
            return 0.0
        return self.fuzz_cases / self.fuzz_seconds

    @property
    def fuzz_dedupe_ratio(self) -> float:
        """unique findings / raw findings (1.0 when nothing deduped)."""
        if not self.fuzz_findings:
            return 1.0
        return self.fuzz_unique_findings / self.fuzz_findings

    @property
    def service_jobs_per_second(self) -> float:
        """Service throughput over execution wall time."""
        if self.service_seconds <= 0:
            return 0.0
        return self.service_jobs_done / self.service_seconds

    @property
    def vector_chunks_per_second(self) -> float:
        """Vector-backend chunk throughput over simulate wall time."""
        sim = self.stages.get("simulate")
        if sim is None or sim.wall_seconds <= 0:
            return 0.0
        return self.vector_chunks_total / sim.wall_seconds

    @property
    def sweep_points_per_second(self) -> float:
        """Sweep throughput over campaign wall time."""
        if self.sweep_seconds <= 0:
            return 0.0
        return self.sweep_points_total / self.sweep_seconds

    def merge_dict(self, data: dict) -> None:
        """Fold a worker's :meth:`to_dict` counters into this object."""
        for name, stage in data.get("stages", {}).items():
            m = self.stages.setdefault(name, StageMetrics())
            m.invocations += stage.get("invocations", 0)
            m.wall_seconds += stage.get("wall_seconds", 0.0)
        for kind, traffic in data.get("cache", {}).items():
            c = self.cache.setdefault(kind, CacheMetrics())
            c.hits += traffic.get("hits", 0)
            c.misses += traffic.get("misses", 0)
            c.bytes_read += traffic.get("bytes_read", 0)
            c.bytes_written += traffic.get("bytes_written", 0)
        self.total_cycles_simulated += data.get("total_cycles_simulated", 0)
        self.jobs_dispatched += data.get("jobs_dispatched", 0)
        self.worker_crashes += data.get("worker_crashes", 0)
        self.task_retries += data.get("task_retries", 0)
        self.retry_backoff_seconds += data.get("retry_backoff_seconds", 0.0)
        self.quarantined_artifacts += data.get("quarantined_artifacts", 0)
        self.pool_rebuilds += data.get("pool_rebuilds", 0)
        self.fuzz_cases += data.get("fuzz_cases", 0)
        self.fuzz_findings += data.get("fuzz_findings", 0)
        self.fuzz_unique_findings += data.get("fuzz_unique_findings", 0)
        self.fuzz_seconds += data.get("fuzz_seconds", 0.0)
        self.jobs_admitted += data.get("jobs_admitted", 0)
        self.jobs_shed += data.get("jobs_shed", 0)
        self.jobs_deduped += data.get("jobs_deduped", 0)
        self.breaker_trips += data.get("breaker_trips", 0)
        self.service_jobs_done += data.get("service_jobs_done", 0)
        self.service_seconds += data.get("service_seconds", 0.0)
        self.vector_chunks_total += data.get("vector_chunks_total", 0)
        self.sweep_points_total += data.get("sweep_points_total", 0)
        self.sweep_points_cached += data.get("sweep_points_cached", 0)
        self.sweep_seconds += data.get("sweep_seconds", 0.0)
        self.shards_reassigned += data.get("shards_reassigned", 0)
        self.leases_fenced += data.get("leases_fenced", 0)
        self.hedged_shards += data.get("hedged_shards", 0)
        self.workers_lost += data.get("workers_lost", 0)
        self.engine_demotions += data.get("engine_demotions", 0)
        self.native_parity_failures += data.get(
            "native_parity_failures", 0)
        self.native_kernel_crashes += data.get(
            "native_kernel_crashes", 0)
        self.kernel_cache_quarantined += data.get(
            "kernel_cache_quarantined", 0)

    # ----- output -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "stages": {name: {"invocations": m.invocations,
                              "wall_seconds": round(m.wall_seconds, 6)}
                       for name, m in self.stages.items()},
            "cache": {kind: {"hits": c.hits, "misses": c.misses,
                             "hit_rate": round(c.hit_rate, 4),
                             "bytes_read": c.bytes_read,
                             "bytes_written": c.bytes_written}
                      for kind, c in self.cache.items()},
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.hit_rate, 4),
            "total_cycles_simulated": self.total_cycles_simulated,
            "jobs_dispatched": self.jobs_dispatched,
            "worker_crashes": self.worker_crashes,
            "task_retries": self.task_retries,
            "retry_backoff_seconds": round(self.retry_backoff_seconds, 6),
            "quarantined_artifacts": self.quarantined_artifacts,
            "pool_rebuilds": self.pool_rebuilds,
            "fuzz_cases": self.fuzz_cases,
            "fuzz_findings": self.fuzz_findings,
            "fuzz_unique_findings": self.fuzz_unique_findings,
            "fuzz_seconds": round(self.fuzz_seconds, 6),
            "fuzz_cases_per_second": round(self.fuzz_cases_per_second, 3),
            "fuzz_dedupe_ratio": round(self.fuzz_dedupe_ratio, 4),
            "jobs_admitted": self.jobs_admitted,
            "jobs_shed": self.jobs_shed,
            "jobs_deduped": self.jobs_deduped,
            "breaker_trips": self.breaker_trips,
            "service_jobs_done": self.service_jobs_done,
            "service_seconds": round(self.service_seconds, 6),
            "service_jobs_per_second": round(
                self.service_jobs_per_second, 3),
            "vector_chunks_total": self.vector_chunks_total,
            "vector_chunks_per_second": round(
                self.vector_chunks_per_second, 3),
            "sweep_points_total": self.sweep_points_total,
            "sweep_points_cached": self.sweep_points_cached,
            "sweep_seconds": round(self.sweep_seconds, 6),
            "sweep_points_per_second": round(
                self.sweep_points_per_second, 3),
            "shards_reassigned": self.shards_reassigned,
            "leases_fenced": self.leases_fenced,
            "hedged_shards": self.hedged_shards,
            "workers_lost": self.workers_lost,
            "engine_demotions": self.engine_demotions,
            "native_parity_failures": self.native_parity_failures,
            "native_kernel_crashes": self.native_kernel_crashes,
            "kernel_cache_quarantined": self.kernel_cache_quarantined,
        }

    def write_json(self, path: str) -> None:
        """Dump the counters as ``BENCH_pipeline.json``-style JSON.

        If ``path`` already holds a bench file, its timing trajectory is
        carried forward: every write appends one dated entry (stage wall
        times + cycle volume) to a bounded ``history`` list, so the
        committed baseline records how the pipeline's performance moved
        over time, not just its latest snapshot.
        """
        data = self.to_dict()
        history: list[dict] = []
        try:
            with open(path) as handle:
                previous = json.load(handle)
            history = list(previous.get("history", []))
        except (OSError, ValueError):
            pass
        history.append({
            "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "schema": data["schema"],
            "stages": {name: stage["wall_seconds"]
                       for name, stage in data["stages"].items()},
            "total_cycles_simulated": data["total_cycles_simulated"],
        })
        data["history"] = history[-_HISTORY_LIMIT:]
        with open(path, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        """Human-readable pipeline summary block."""
        lines = ["pipeline metrics", "----------------"]
        for name in STAGES:
            m = self.stages[name]
            lines.append(f"  {name:<9s} {m.invocations:>5d} computed "
                         f"in {m.wall_seconds:8.2f}s")
        total = self.cache_hits + self.cache_misses
        if total:
            lines.append(f"  cache     {self.cache_hits}/{total} hits "
                         f"({self.hit_rate * 100:.1f}%)")
            read = sum(c.bytes_read for c in self.cache.values())
            written = sum(c.bytes_written for c in self.cache.values())
            if read or written:
                lines.append(f"  bytes     {read / 1024:.1f} KiB read, "
                             f"{written / 1024:.1f} KiB written")
        else:
            lines.append("  cache     (disabled)")
        lines.append(f"  simulated {self.total_cycles_simulated} cycles")
        if self.jobs_dispatched:
            lines.append(f"  jobs      {self.jobs_dispatched} dispatched, "
                         f"{self.worker_crashes} worker crashes")
        if self.task_retries or self.quarantined_artifacts \
                or self.pool_rebuilds:
            lines.append(
                f"  recovery  {self.task_retries} retries "
                f"({self.retry_backoff_seconds:.2f}s backoff), "
                f"{self.quarantined_artifacts} quarantined, "
                f"{self.pool_rebuilds} pool rebuilds")
        if self.fuzz_cases:
            lines.append(
                f"  fuzz      {self.fuzz_cases} cases in "
                f"{self.fuzz_seconds:.2f}s "
                f"({self.fuzz_cases_per_second:.1f}/s), "
                f"{self.fuzz_findings} findings "
                f"({self.fuzz_unique_findings} unique, dedupe ratio "
                f"{self.fuzz_dedupe_ratio:.2f})")
        if self.jobs_admitted or self.jobs_shed or self.jobs_deduped:
            lines.append(
                f"  service   {self.jobs_admitted} admitted, "
                f"{self.jobs_shed} shed, {self.jobs_deduped} deduped, "
                f"{self.breaker_trips} breaker trips, "
                f"{self.service_jobs_done} done in "
                f"{self.service_seconds:.2f}s "
                f"({self.service_jobs_per_second:.2f}/s)")
        if self.vector_chunks_total:
            lines.append(
                f"  vector    {self.vector_chunks_total} chunks "
                f"({self.vector_chunks_per_second:.1f}/s over simulate "
                f"time)")
        if self.sweep_points_total:
            lines.append(
                f"  sweep     {self.sweep_points_total} points "
                f"({self.sweep_points_cached} warm) in "
                f"{self.sweep_seconds:.2f}s "
                f"({self.sweep_points_per_second:.2f}/s)")
        if self.shards_reassigned or self.leases_fenced \
                or self.hedged_shards or self.workers_lost:
            lines.append(
                f"  cluster   {self.workers_lost} workers lost, "
                f"{self.shards_reassigned} shards reassigned, "
                f"{self.hedged_shards} hedged, "
                f"{self.leases_fenced} leases fenced")
        if self.engine_demotions or self.native_parity_failures \
                or self.native_kernel_crashes \
                or self.kernel_cache_quarantined:
            lines.append(
                f"  native    {self.engine_demotions} demotions, "
                f"{self.native_kernel_crashes} kernel crashes, "
                f"{self.native_parity_failures} parity failures, "
                f"{self.kernel_cache_quarantined} kernel artifacts "
                f"quarantined")
        return "\n".join(lines)


#: bound on the trajectory carried inside a bench JSON file
_HISTORY_LIMIT = 50


def vector_speedup_floor(current: dict, baseline: dict,
                         min_speedup: float = 2.5,
                         stages: tuple = ("emulate", "simulate"),
                         min_seconds: float = 0.05) -> list[str]:
    """Per-invocation speedup floor for the vector engine.

    ``current`` is a bench-JSON dict from a vector-engine run,
    ``baseline`` the committed fastpath baseline.  Each listed stage
    must run at least ``min_speedup`` times faster per invocation than
    the baseline; stages cheaper than ``min_seconds`` total in the
    baseline are skipped as noise.  Returns one line per stage missing
    the floor (empty = gate passed).
    """
    failures: list[str] = []
    for name in stages:
        base = baseline.get("stages", {}).get(name, {})
        cur = current.get("stages", {}).get(name, {})
        base_wall = base.get("wall_seconds", 0.0)
        base_inv = base.get("invocations", 0)
        cur_wall = cur.get("wall_seconds", 0.0)
        cur_inv = cur.get("invocations", 0)
        if base_wall < min_seconds or not base_inv or not cur_inv:
            continue
        base_per = base_wall / base_inv
        cur_per = cur_wall / cur_inv
        if cur_per <= 0:
            continue
        speedup = base_per / cur_per
        if speedup < min_speedup:
            failures.append(
                f"{name}: {speedup:.2f}x per invocation vs baseline "
                f"({cur_per * 1000:.2f} ms vs {base_per * 1000:.2f} ms; "
                f"floor {min_speedup:.1f}x)")
    return failures


def compare_stage_walltimes(current: dict, baseline: dict,
                            threshold: float = 0.25,
                            min_seconds: float = 0.05) -> list[str]:
    """Compare two bench-JSON dicts; return one line per regression.

    A stage regresses when its per-invocation wall time exceeds the
    baseline's by more than ``threshold`` (fraction).  Stages cheaper
    than ``min_seconds`` total in the baseline are ignored — their
    timings are dominated by noise, not by the code under test.  An
    empty return value means no stage regressed.
    """
    regressions: list[str] = []
    for name, base in baseline.get("stages", {}).items():
        base_wall = base.get("wall_seconds", 0.0)
        base_inv = base.get("invocations", 0)
        if base_wall < min_seconds or not base_inv:
            continue
        cur = current.get("stages", {}).get(name)
        if cur is None:
            continue
        cur_wall = cur.get("wall_seconds", 0.0)
        cur_inv = cur.get("invocations", 0)
        if not cur_inv:
            continue
        base_per = base_wall / base_inv
        cur_per = cur_wall / cur_inv
        if cur_per > base_per * (1.0 + threshold):
            regressions.append(
                f"{name}: {cur_per * 1000:.2f} ms/invocation vs baseline "
                f"{base_per * 1000:.2f} ms "
                f"(+{(cur_per / base_per - 1.0) * 100:.0f}%, threshold "
                f"+{threshold * 100:.0f}%)")
    return regressions
