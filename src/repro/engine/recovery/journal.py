"""Append-only, fsync'd run journal for resumable experiment suites.

Every suite/figure run gets a run id and one JSONL file under
``<cache-dir>/runs/<RUN_ID>.jsonl``.  Each record is a single JSON
object flushed *and fsync'd* before the write that it describes is
considered durable, so a run killed with SIGKILL loses at most the
records of tasks that finished after the last fsync — and those tasks'
artifacts are still in the content-addressed store, where the resume
path rediscovers them.

Record types::

    {"type": "run-start",  "run_id": ..., "time": ..., "meta": {...}}
    {"type": "run-resume", "run_id": ..., "time": ...}
    {"type": "task-start", "task": ..., "spec": ..., "attempt": n}
    {"type": "task-finish","task": ..., "artifacts": [[kind, key, sha256], ...]}
    {"type": "task-fail",  "task": ..., "error": ..., "transient": bool, ...}
    {"type": "run-finish", "ok": bool, "time": ...}

``replay_journal`` tolerates a torn final line (the crash may land
mid-append) and ``verify_completed`` re-verifies each recorded
artifact's on-disk digest before a resumed run is allowed to skip the
task — a journal entry is a *claim*, the store bytes are the proof.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.robustness.errors import ReproError


def new_run_id() -> str:
    """Sortable-by-start-time, globally unique run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"R{stamp}-{uuid.uuid4().hex[:8]}"


def journal_path(runs_dir: str | os.PathLike, run_id: str) -> Path:
    return Path(runs_dir) / f"{run_id}.jsonl"


@dataclass
class JournalState:
    """Everything a resume needs, reconstructed from one journal file."""

    run_id: str
    meta: dict = field(default_factory=dict)
    #: task id -> [(kind, key, sha256), ...] of its recorded artifacts
    completed: dict[str, list[tuple[str, str, str]]] = \
        field(default_factory=dict)
    #: task id -> last task-fail record
    failed: dict[str, dict] = field(default_factory=dict)
    #: task id -> highest attempt seen in task-start records
    attempts: dict[str, int] = field(default_factory=dict)
    records: int = 0
    #: torn/unparsable lines skipped during replay (normally 0 or 1)
    torn_lines: int = 0
    finished: bool = False


def replay_journal(path: str | os.PathLike) -> JournalState:
    """Reconstruct run state; raises :class:`ReproError` if missing."""
    path = Path(path)
    try:
        lines = path.read_bytes().splitlines()
    except FileNotFoundError:
        raise ReproError(f"no journal at {path} — unknown run id?") \
            from None
    state = JournalState(run_id=path.stem)
    for raw in lines:
        try:
            record = json.loads(raw)
        except ValueError:
            # A SIGKILL mid-append leaves at most one torn line; count
            # it and move on — every *durable* record already parsed.
            state.torn_lines += 1
            continue
        state.records += 1
        rtype = record.get("type")
        if rtype == "run-start":
            state.run_id = record.get("run_id", state.run_id)
            state.meta = record.get("meta", {})
        elif rtype == "task-start":
            task = record["task"]
            state.attempts[task] = max(state.attempts.get(task, 0),
                                       int(record.get("attempt", 1)))
        elif rtype == "task-finish":
            task = record["task"]
            state.completed[task] = [
                (str(k), str(key), str(sha))
                for k, key, sha in record.get("artifacts", [])]
            state.failed.pop(task, None)
        elif rtype == "task-fail":
            task = record["task"]
            if task not in state.completed:
                state.failed[task] = record
        elif rtype == "run-finish":
            state.finished = bool(record.get("ok"))
    return state


def tail_records(path: str | os.PathLike, offset: int = 0
                 ) -> tuple[list[dict], int]:
    """Incrementally read journal records from byte ``offset``.

    The live-progress half of the journal: the experiment service's
    ``watch`` streams a running job by polling this against the job's
    journal file.  Only *complete* lines are parsed; a final line still
    being appended (no trailing newline yet) is left for the next call,
    so a record is never observed half-written.  Returns the parsed
    records and the new offset to resume from.  A missing file (the
    job has not opened its journal yet) yields no records.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return [], offset
    records: list[dict] = []
    consumed = 0
    for line in chunk.splitlines(keepends=True):
        if not line.endswith(b"\n"):
            break  # in-progress append: re-read next poll
        consumed += len(line)
        try:
            records.append(json.loads(line))
        except ValueError:
            continue  # torn line from a previous crash: skip, advance
    return records, offset + consumed


def verify_completed(state: JournalState, store) -> \
        tuple[set[str], dict[str, str]]:
    """Check each completed task's artifacts against the store.

    Returns ``(verified_task_ids, invalid)`` where ``invalid`` maps a
    task id to the reason its journal claim failed verification.  An
    artifact whose on-disk digest differs from the recorded one is
    quarantined (via :meth:`ArtifactStore.quarantine`) so the resumed
    run recomputes it instead of trusting corrupt bytes.
    """
    verified: set[str] = set()
    invalid: dict[str, str] = {}
    for task, artifacts in state.completed.items():
        reason = None
        for kind, key, recorded_sha in artifacts:
            actual = store.digest_of(kind, key)
            if actual is None:
                reason = f"{kind}/{key[:12]} missing from the store"
                break
            if actual != recorded_sha:
                store.quarantine(kind, key, reason="resume-digest-mismatch")
                reason = (f"{kind}/{key[:12]} digest mismatch "
                          f"(quarantined)")
                break
        if reason is None:
            verified.add(task)
        else:
            invalid[task] = reason
    return verified, invalid


class RunJournal:
    """Writer half: append records durably to one run's journal file."""

    def __init__(self, path: Path, run_id: str):
        self.path = Path(path)
        self.run_id = run_id
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    # ----- constructors -------------------------------------------------

    @classmethod
    def create(cls, runs_dir: str | os.PathLike, run_id: str | None = None,
               meta: dict | None = None) -> "RunJournal":
        run_id = run_id or new_run_id()
        journal = cls(journal_path(runs_dir, run_id), run_id)
        journal.append({"type": "run-start", "run_id": run_id,
                        "time": time.time(), "meta": meta or {}})
        return journal

    @classmethod
    def resume(cls, runs_dir: str | os.PathLike, run_id: str
               ) -> "tuple[RunJournal, JournalState]":
        path = journal_path(runs_dir, run_id)
        state = replay_journal(path)
        journal = cls(path, run_id)
        journal.append({"type": "run-resume", "run_id": run_id,
                        "time": time.time()})
        return journal, state

    # ----- records ------------------------------------------------------

    def append(self, record: dict) -> None:
        """One JSON line; durable (flushed + fsync'd) before returning."""
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def task_start(self, task: str, spec: str | None = None,
                   attempt: int = 1) -> None:
        self.append({"type": "task-start", "task": task, "spec": spec,
                     "attempt": attempt})

    def task_finish(self, task: str,
                    artifacts: list[tuple[str, str, str]]) -> None:
        self.append({"type": "task-finish", "task": task,
                     "artifacts": [list(a) for a in artifacts]})

    def task_fail(self, task: str, error_type: str, message: str,
                  transient: bool, attempt: int = 1) -> None:
        self.append({"type": "task-fail", "task": task,
                     "error": error_type, "message": message[:500],
                     "transient": transient, "attempt": attempt})

    def run_finish(self, ok: bool) -> None:
        self.append({"type": "run-finish", "ok": ok, "time": time.time()})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
