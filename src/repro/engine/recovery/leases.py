"""Fencing-token shard leases over a shared artifact store.

The cluster layer (:mod:`repro.service.cluster`) partitions a campaign
into deterministic shards; this module is the claim/heartbeat/commit
substrate those shards live on.  Everything is plain files under one
campaign directory on the store, so the machinery survives SIGKILL of
any participant and needs no daemon:

``epoch``
    A store-side **monotonically increasing fencing counter**.  Every
    lease ever issued for the campaign carries a strictly greater
    ``epoch`` than every lease before it, so "newer" is a total order
    that no wall clock participates in.
``leases/shard-<i>.json``
    The active lease: owner token (:func:`~repro.engine.recovery.locks.
    new_owner_token` — the same token type the store's write locks
    use), fencing epoch, and a heartbeat counter the holder bumps while
    executing.  Liveness is judged by a :class:`~repro.engine.recovery.
    locks.LeaseObserver`: a lease is stale only after its ``(epoch,
    beats)`` identity sat unchanged for the campaign's lease window on
    the *observer's* monotonic clock.
``done/shard-<i>.json``
    The shard's commit marker.  Written exactly once (first commit
    wins — hedged duplicates lose cleanly) and only by a holder whose
    lease still carries the current epoch, so a fenced zombie can
    *prove* nothing: its commit raises :class:`LeaseFencedError` and
    leaves no marker.
``events/`` / ``fails/``
    Append-only evidence: reassignments, fencings, hedges and typed
    shard failures, deduplicated by ``(kind, shard, epoch)`` so racing
    observers cannot double-count.

All mutations serialize on a per-shard :class:`FileLock`; all files are
written atomically (tmp + rename), so lock-free readers never see torn
state.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from pathlib import Path

from repro.engine.recovery.locks import FileLock, new_owner_token
from repro.robustness.errors import LeaseFencedError

__all__ = ["ShardLease", "ShardLeaseStore", "atomic_write_json",
           "read_json", "new_owner_token"]

#: how long a shard-mutation lock may be held; mutations are a few
#: file operations, so a crashed mutator recovers fast
_MUTATION_LEASE = 5.0
_MUTATION_TIMEOUT = 30.0


def atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` so concurrent readers see old or new, never torn."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.tmp.{os.getpid()}.{os.urandom(4).hex()}")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


def read_json(path: Path) -> dict | None:
    """Best-effort read; None when absent, torn, or mid-replace."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


@dataclass(frozen=True)
class ShardLease:
    """One issued lease: who may execute shard ``shard`` right now."""

    shard: int
    owner: str
    #: fencing token — strictly increasing across every lease of the
    #: campaign; a commit is valid only under the current epoch
    epoch: int
    #: heartbeat counter; the holder bumps it while executing
    beats: int = 0
    #: True for a straggler-hedge duplicate of an in-flight shard
    hedge: bool = False
    pid: int = 0

    def to_dict(self) -> dict:
        return {"shard": self.shard, "owner": self.owner,
                "epoch": self.epoch, "beats": self.beats,
                "hedge": self.hedge, "pid": self.pid}

    @classmethod
    def from_dict(cls, data: dict) -> "ShardLease | None":
        try:
            return cls(shard=int(data["shard"]), owner=str(data["owner"]),
                       epoch=int(data["epoch"]), beats=int(data["beats"]),
                       hedge=bool(data.get("hedge", False)),
                       pid=int(data.get("pid", 0)))
        except (KeyError, TypeError, ValueError):
            return None


class ShardLeaseStore:
    """Claim/heartbeat/commit for one campaign's shards, on one root."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    # ----- paths --------------------------------------------------------

    def _slot(self, shard: int, hedge: bool) -> Path:
        name = f"shard-{shard:05d}" + (".hedge" if hedge else "")
        return self.root / "leases" / f"{name}.json"

    def _shard_lock(self, shard: int) -> FileLock:
        return FileLock(self.root / "leases" / f"shard-{shard:05d}.lock",
                        lease_seconds=_MUTATION_LEASE,
                        timeout=_MUTATION_TIMEOUT)

    def done_path(self, shard: int) -> Path:
        return self.root / "done" / f"shard-{shard:05d}.json"

    # ----- fencing epoch ------------------------------------------------

    def next_epoch(self) -> int:
        """Allocate the next fencing epoch (store-wide total order)."""
        counter = self.root / "epoch"
        with FileLock(self.root / "epoch.lock",
                      lease_seconds=_MUTATION_LEASE,
                      timeout=_MUTATION_TIMEOUT):
            try:
                current = int(counter.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                current = 0
            issued = current + 1
            tmp = counter.with_name(
                f"epoch.tmp.{os.getpid()}.{os.urandom(4).hex()}")
            tmp.write_text(f"{issued}\n", encoding="utf-8")
            os.replace(tmp, counter)
        return issued

    # ----- lease lifecycle ----------------------------------------------

    def read(self, shard: int, hedge: bool = False) -> ShardLease | None:
        data = read_json(self._slot(shard, hedge))
        return None if data is None else ShardLease.from_dict(data)

    def claim(self, shard: int, owner: str | None = None,
              hedge: bool = False) -> ShardLease | None:
        """Try to lease ``shard``; None when taken or already done.

        The caller that loses a claim race can :meth:`read` the slot to
        observe the winner's fencing token.
        """
        owner = owner or new_owner_token()
        epoch = self.next_epoch()
        with self._shard_lock(shard):
            if self.done_path(shard).exists():
                return None
            if self.read(shard, hedge) is not None:
                return None
            lease = ShardLease(shard=shard, owner=owner, epoch=epoch,
                               hedge=hedge, pid=os.getpid())
            atomic_write_json(self._slot(shard, hedge), lease.to_dict())
        return lease

    def heartbeat(self, lease: ShardLease) -> ShardLease:
        """Bump the lease's heartbeat counter; raise if fenced."""
        with self._shard_lock(lease.shard):
            current = self.read(lease.shard, lease.hedge)
            if current is None or current.epoch != lease.epoch:
                self._fenced(lease, current)
            renewed = replace(lease, beats=current.beats + 1)
            atomic_write_json(self._slot(lease.shard, lease.hedge),
                              renewed.to_dict())
        return renewed

    def release(self, lease: ShardLease) -> None:
        """Give the shard back (transient failure); fencing-checked."""
        with self._shard_lock(lease.shard):
            current = self.read(lease.shard, lease.hedge)
            if current is not None and current.epoch == lease.epoch:
                self._slot(lease.shard, lease.hedge).unlink(
                    missing_ok=True)

    def break_lease(self, shard: int, epoch: int,
                    hedge: bool = False) -> bool:
        """Revoke the lease *iff* it still carries ``epoch``.

        The epoch check makes concurrent breakers safe: only the lease
        generation the caller judged stale can be broken, never a
        successor's fresh lease that reused the slot.
        """
        with self._shard_lock(shard):
            current = self.read(shard, hedge)
            if current is None or current.epoch != epoch:
                return False
            self._slot(shard, hedge).unlink(missing_ok=True)
        return True

    # ----- commit -------------------------------------------------------

    def complete(self, lease: ShardLease, payload: dict) -> bool:
        """Commit the shard's done marker under ``lease``.

        Returns True when this commit won, False when another holder
        (the other side of a hedge) already committed.  Raises
        :class:`LeaseFencedError` — and writes nothing — when the lease
        was superseded, so a zombie cannot publish a stale shard.
        """
        with self._shard_lock(lease.shard):
            current = self.read(lease.shard, lease.hedge)
            if current is None or current.epoch != lease.epoch:
                self._fenced(lease, current)
            slot = self._slot(lease.shard, lease.hedge)
            if self.done_path(lease.shard).exists():
                slot.unlink(missing_ok=True)
                return False
            marker = dict(payload)
            marker.update({"shard": lease.shard, "epoch": lease.epoch,
                           "owner": lease.owner, "hedge": lease.hedge})
            atomic_write_json(self.done_path(lease.shard), marker)
            slot.unlink(missing_ok=True)
        return True

    def _fenced(self, lease: ShardLease, current: ShardLease | None):
        holder = None if current is None else current.epoch
        self.record_event("fenced", lease.shard, lease.epoch)
        raise LeaseFencedError(
            f"shard {lease.shard} lease (epoch {lease.epoch}) was "
            f"superseded" + (f" by epoch {holder}" if holder else
                             " — lease revoked"),
            shard=lease.shard, epoch=lease.epoch, holder_epoch=holder)

    def done(self, shard: int) -> dict | None:
        return read_json(self.done_path(shard))

    def done_shards(self) -> set[int]:
        out = set()
        done_dir = self.root / "done"
        if done_dir.is_dir():
            for path in done_dir.glob("shard-*.json"):
                try:
                    out.add(int(path.stem.split("-")[1]))
                except (IndexError, ValueError):
                    continue
        return out

    # ----- durable evidence ---------------------------------------------

    def record_event(self, kind: str, shard: int, epoch: int,
                     **extra) -> bool:
        """Record one ``(kind, shard, epoch)`` event exactly once."""
        path = self.root / "events" / f"{kind}-s{shard:05d}-e{epoch}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"kind": kind, "shard": shard, "epoch": epoch}
        payload.update(extra)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, json.dumps(payload, sort_keys=True).encode()
                     + b"\n")
        finally:
            os.close(fd)
        return True

    def events(self, kind: str | None = None) -> list[dict]:
        out = []
        events_dir = self.root / "events"
        if events_dir.is_dir():
            for path in sorted(events_dir.glob("*.json")):
                data = read_json(path)
                if data is None:
                    continue
                if kind is None or data.get("kind") == kind:
                    out.append(data)
        return out

    def count_events(self, kind: str) -> int:
        return len(self.events(kind))

    def record_failure(self, shard: int, epoch: int, error: str,
                       message: str, transient: bool) -> None:
        self.record_event("fail", shard, epoch, error=error,
                          message=message[:500], transient=transient)

    def failure_count(self, shard: int) -> int:
        return sum(1 for e in self.events("fail")
                   if e.get("shard") == shard)
