"""Advisory file locks with leases for artifact-store writers.

A lock is a sidecar file created with ``O_CREAT | O_EXCL`` (atomic on
every filesystem the store targets) holding the owner's pid, a random
ownership token and the owner's declared lease duration.  Two writers
racing on one artifact key serialize on the sidecar; a writer that dies
with the lock held is recovered by lease expiry (and, on the same host,
by a liveness probe of the recorded pid), so a SIGKILLed worker never
wedges the suite.

Staleness is judged **monotonic-safe**: the lock file carries the
holder's lease *duration*, never an absolute wall-clock deadline, and a
waiter measures that duration on its **own monotonic clock** from the
moment it first observed the holder's token (:class:`LeaseObserver`).
Two hosts sharing a store therefore never compare wall clocks — clock
skew cannot make a live lock look expired, so skew cannot cause a
double-claim.  The ownership token doubles as the fencing identity: the
shard-lease machinery in :mod:`repro.engine.recovery.leases` reuses
:func:`new_owner_token` (plus a store-side monotonically increasing
epoch) for campaign shards.

Breaking a stale lock is itself racy — two waiters may both decide the
lock expired — so the breaker *renames* the stale sidecar to a unique
name before unlinking it: exactly one rename wins, the loser just
retries.  ``release`` verifies the ownership token first, so an owner
whose lock was broken (absurdly slow write) cannot unlink a successor's
lock.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Hashable

from repro.robustness.errors import ArtifactLockTimeout

#: lock owners renew nothing — a healthy write finishes in milliseconds,
#: so a generous lease only delays recovery from a *crashed* holder
DEFAULT_LEASE_SECONDS = 30.0
DEFAULT_TIMEOUT = 10.0
_POLL_INTERVAL = 0.02


def new_owner_token() -> str:
    """A process-unique ownership/fencing token (``pid-random``).

    Shared by :class:`FileLock` sidecars and the shard leases in
    :mod:`repro.engine.recovery.leases` — one token type for every
    lease-shaped thing on the store.
    """
    return f"{os.getpid()}-{os.urandom(8).hex()}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but not ours; assume alive
    return True


class LeaseObserver:
    """Monotonic-safe staleness judge for leases held by *other* hosts.

    ``stale(key, identity, window)`` is True only after the observer
    has seen the **same identity** (token, heartbeat count, …) under
    ``key`` for more than ``window`` seconds of its *own* monotonic
    clock.  Any identity change resets the observation epoch, so a
    holder that renews (or a fresh holder reusing the path) is never
    broken, and no wall-clock value ever crosses a process boundary.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._seen: dict[Hashable, tuple[Hashable, float]] = {}

    def stale(self, key: Hashable, identity: Hashable,
              window: float) -> bool:
        now = self._clock()
        observed = self._seen.get(key)
        if observed is None or observed[0] != identity:
            self._seen[key] = (identity, now)
            return False
        return (now - observed[1]) > window

    def forget(self, key: Hashable) -> None:
        self._seen.pop(key, None)


@dataclass
class FileLock:
    """One advisory lock file; reentrant use is a bug, not supported."""

    path: Path
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    timeout: float = DEFAULT_TIMEOUT
    poll_interval: float = _POLL_INTERVAL
    _token: str | None = field(default=None, repr=False)
    _observer: LeaseObserver = field(default_factory=LeaseObserver,
                                     repr=False, compare=False)

    def __post_init__(self):
        self.path = Path(self.path)

    # ----- acquisition --------------------------------------------------

    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_acquire():
                return
            self._break_if_stale()
            if time.monotonic() >= deadline:
                raise ArtifactLockTimeout(
                    f"could not acquire {self.path} within "
                    f"{self.timeout:g}s (held by a live writer?)",
                    lock_path=str(self.path), waited=self.timeout)
            time.sleep(self.poll_interval)

    def _try_acquire(self) -> bool:
        token = new_owner_token()
        payload = json.dumps({
            "pid": os.getpid(),
            "token": token,
            "lease": self.lease_seconds,
        }).encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        self._token = token
        self._observer.forget(self.path)
        return True

    def _read_holder(self) -> dict | None:
        try:
            return json.loads(self.path.read_bytes())
        except (OSError, ValueError):
            return None  # gone, or torn mid-write: let the poll retry

    def _break_if_stale(self) -> None:
        holder = self._read_holder()
        if holder is None:
            return
        pid = holder.get("pid")
        dead = isinstance(pid, int) and not _pid_alive(pid)
        if not dead:
            # Cross-host (or unprobeable) holder: trust only our own
            # monotonic clock.  The holder's declared lease duration is
            # measured from the moment *we* first saw its token.
            try:
                window = float(holder.get("lease", DEFAULT_LEASE_SECONDS))
            except (TypeError, ValueError):
                window = DEFAULT_LEASE_SECONDS
            if not self._observer.stale(self.path, holder.get("token"),
                                        window):
                return
        # Rename-then-unlink so concurrent breakers cannot unlink a
        # *fresh* lock that re-used the path after the stale one left.
        casualty = self.path.with_name(
            f"{self.path.name}.stale.{os.getpid()}.{os.urandom(4).hex()}")
        try:
            os.replace(self.path, casualty)
        except OSError:
            return  # someone else broke it first
        casualty.unlink(missing_ok=True)
        self._observer.forget(self.path)

    # ----- release ------------------------------------------------------

    def release(self) -> None:
        if self._token is None:
            return
        holder = self._read_holder()
        if holder is not None and holder.get("token") == self._token:
            try:
                self.path.unlink()
            except OSError:
                pass
        self._token = None

    @property
    def held(self) -> bool:
        return self._token is not None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()
