"""Transient/permanent failure classification and retry backoff.

The scheduler must distinguish *the machine hiccuped* (worker crash,
``BrokenProcessPool``, a wall-clock timeout under load, a corrupt
artifact read, a full disk) from *the program is wrong* (compile
failures, verifier rejections, model divergence).  The first class
earns capped exponential backoff and a bounded number of retries; the
second fails the task immediately — retrying a deterministic compiler
bug only burns the budget the retries exist to protect.

Jitter is deterministic (seeded from the task id and attempt number),
so a test that injects a fault observes the exact same backoff schedule
on every run.
"""

from __future__ import annotations

import hashlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.robustness.errors import (ArtifactLockTimeout, EmulationTimeout,
                                     NativeKernelCrash,
                                     NativeToolchainMissing,
                                     QuotaExceededError,
                                     ServiceOverloadedError,
                                     TraceIntegrityError, WorkerLostError)

#: exception classes whose failures are worth retrying.  Order matters
#: for nothing here — ``is_transient`` checks this tuple before the
#: permanent default.  ``OSError`` covers disk-full/EIO during store
#: writes; ``TraceIntegrityError`` is a corrupt-artifact read (the store
#: quarantined it, a retry recomputes); ``EmulationTimeout`` may be
#: contention rather than an infinite loop, so it gets its capped tries.
#: ``NativeKernelCrash``/``NativeToolchainMissing`` are transient
#: because the supervisor demotes the process before they propagate —
#: the retry runs on a pure-Python engine and succeeds byte-identically.
#: ``WorkerLostError`` is a reassigned cluster shard: the shard is
#: deterministic ``(campaign_digest, index)`` work, so a retry by any
#: worker reproduces it exactly.  ``LeaseFencedError`` is deliberately
#: *not* here — the fenced worker's view is stale forever.
TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    BrokenProcessPool,
    TraceIntegrityError,
    EmulationTimeout,
    ArtifactLockTimeout,
    ServiceOverloadedError,
    QuotaExceededError,
    NativeKernelCrash,
    NativeToolchainMissing,
    WorkerLostError,
    TimeoutError,
    ConnectionError,
    OSError,
)

#: error *type names* considered transient, for failures that cross a
#: process boundary as strings (journal records, worker crash reports)
TRANSIENT_TYPE_NAMES = frozenset(
    t.__name__ for t in TRANSIENT_TYPES) | {"WorkerCrash"}


def is_transient(exc: BaseException) -> bool:
    """True when retrying ``exc``'s failure could plausibly succeed."""
    return isinstance(exc, TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: 3 means one try plus up to
    two retries.  Backoff for attempt ``n`` (1-based, i.e. the delay
    *before* attempt ``n+1``) is ``base * 2**(n-1)`` capped at ``cap``,
    multiplied by a jitter factor in ``[1-jitter, 1+jitter]`` derived
    from ``sha256(seed:task:attempt)`` — fully reproducible.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        return attempt < self.max_attempts and is_transient(exc)

    def backoff(self, task_id: str, attempt: int) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (1-based)."""
        base = min(self.backoff_cap,
                   self.backoff_base * (2.0 ** max(0, attempt - 1)))
        digest = hashlib.sha256(
            f"{self.seed}:{task_id}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


#: retries disabled — one attempt, fail like the pre-recovery scheduler
NO_RETRY = RetryPolicy(max_attempts=1)
