"""Crash-safety substrate for the experiment engine.

Four cooperating pieces make a long figure sweep survive worker
crashes, SIGKILL and on-disk corruption:

* :mod:`repro.engine.recovery.journal` — per-run append-only JSONL
  journal (fsync'd) recording every task's start/finish/failure and the
  artifacts it produced, replayable for ``--resume``;
* :mod:`repro.engine.recovery.retry` — the transient/permanent failure
  classification over the robustness taxonomy plus capped exponential
  backoff with deterministic jitter;
* :mod:`repro.engine.recovery.locks` — advisory file locks with leases
  so concurrent writers (or a resumed run racing a stale worker) never
  interleave on one artifact key;
* :mod:`repro.engine.recovery.fsck` — store integrity scan: verify
  every envelope, quarantine torn/corrupt files, reclaim stale temp
  files (``repro cache fsck [--repair]``).
"""

from repro.engine.recovery.fsck import FsckReport, fsck_store
from repro.engine.recovery.journal import (JournalState, RunJournal,
                                           new_run_id, replay_journal,
                                           verify_completed)
from repro.engine.recovery.locks import FileLock
from repro.engine.recovery.retry import RetryPolicy, is_transient

__all__ = [
    "FileLock",
    "FsckReport",
    "JournalState",
    "RetryPolicy",
    "RunJournal",
    "fsck_store",
    "is_transient",
    "new_run_id",
    "replay_journal",
    "verify_completed",
]
