"""Store integrity scan: verify, report, quarantine, reclaim.

``repro cache fsck`` walks every ``.art`` file under the store's
current schema version and re-verifies its envelope exactly as a read
would (:func:`repro.engine.serialize.unpack`): magic, header JSON,
schema version, kind, body length and body SHA-256.  Torn, truncated or
bit-flipped artifacts are reported — and with ``--repair`` moved into
``quarantine/`` so the next run recomputes them — alongside stale
temporary files (a writer died mid-write) and expired lock sidecars (a
writer died holding its lease).

The scan never deletes artifact bytes: repair *moves* corrupt files
aside for post-mortem; only disposable debris (tmp files, expired
locks) is unlinked.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.engine.serialize import unpack
from repro.robustness.errors import TraceIntegrityError

if TYPE_CHECKING:  # fsck is imported by the store's own module chain
    from repro.engine.store import ArtifactStore

_SUFFIX = ".art"
_LOCK_SUFFIX = ".lock"


@dataclass
class FsckIssue:
    """One file that failed verification (or is debris)."""

    path: str
    kind: str
    problem: str
    #: "reported" | "quarantined" | "removed"
    action: str = "reported"


@dataclass
class FsckReport:
    """Outcome of one store scan."""

    root: str
    repair: bool = False
    scanned: int = 0
    ok_by_kind: dict[str, int] = field(default_factory=dict)
    issues: list[FsckIssue] = field(default_factory=list)
    stale_tmp: int = 0
    stale_locks: int = 0
    #: kernel-cache scan (``include_kernels``): shared objects checked
    kernel_scanned: int = 0
    kernel_ok: int = 0
    kernel_cache: str = ""
    kernel_orphans: int = 0

    @property
    def corrupt(self) -> int:
        return sum(1 for i in self.issues
                   if i.action in ("reported", "quarantined"))

    @property
    def clean(self) -> bool:
        return not self.issues and not self.stale_tmp \
            and not self.stale_locks and not self.kernel_orphans

    def render(self) -> str:
        lines = [f"fsck of artifact store at {self.root}",
                 f"  scanned        : {self.scanned} artifacts"]
        for kind in sorted(self.ok_by_kind):
            lines.append(f"    {kind:<9s}: {self.ok_by_kind[kind]:>5d} ok")
        if self.kernel_cache:
            lines.append(f"  kernel cache   : {self.kernel_scanned} "
                         f"scanned, {self.kernel_ok} ok under "
                         f"{self.kernel_cache}")
            if self.kernel_orphans:
                lines.append(f"    orphan sidecars: {self.kernel_orphans}"
                             + (" (removed)" if self.repair else ""))
        if self.issues:
            lines.append(f"  corrupt        : {self.corrupt}")
            for issue in self.issues:
                lines.append(f"    [{issue.action}] {issue.path}: "
                             f"{issue.problem}")
        if self.stale_tmp:
            lines.append(f"  stale tmp files: {self.stale_tmp}"
                         + (" (removed)" if self.repair else ""))
        if self.stale_locks:
            lines.append(f"  expired locks  : {self.stale_locks}"
                         + (" (removed)" if self.repair else ""))
        verdict = "clean" if self.clean else (
            "repaired" if self.repair else
            "CORRUPT (rerun with --repair to quarantine)")
        lines.append(f"  verdict        : {verdict}")
        return "\n".join(lines)


def _lock_expired(path: Path) -> bool:
    try:
        holder = json.loads(path.read_bytes())
    except (OSError, ValueError):
        return True  # unreadable sidecar is as good as stale
    return holder.get("expires", 0) <= time.time()


def fsck_store(store: "ArtifactStore", repair: bool = False,
               include_kernels: bool = False) -> FsckReport:
    """Verify every artifact envelope under the current schema version.

    With ``include_kernels``, additionally digest-verify the native
    kernel shared-object cache (see
    :func:`repro.fastpath.supervisor.scan_kernel_cache`): a ``.so``
    whose bytes no longer match its ``.sha256`` sidecar is reported —
    and with ``repair`` quarantined — like any corrupt artifact.
    """
    report = FsckReport(root=str(store.root), repair=repair)
    if include_kernels:
        _scan_kernels(report, repair)
    version_dir = store.version_dir
    if not version_dir.is_dir():
        return report
    for path in sorted(version_dir.rglob("*")):
        if not path.is_file():
            continue
        kind = _kind_of(path, version_dir)
        name = path.name
        if name.endswith(_SUFFIX):
            report.scanned += 1
            problem = _verify(path, kind)
            if problem is None:
                report.ok_by_kind[kind] = \
                    report.ok_by_kind.get(kind, 0) + 1
                continue
            action = "reported"
            if repair:
                store.quarantine_file(path, kind, reason=problem)
                action = "quarantined"
            report.issues.append(FsckIssue(
                path=str(path.relative_to(store.root)), kind=kind,
                problem=problem, action=action))
        elif ".tmp" in name and name.startswith("."):
            report.stale_tmp += 1
            if repair:
                path.unlink(missing_ok=True)
        elif name.endswith(_LOCK_SUFFIX) or f"{_LOCK_SUFFIX}." in name:
            if _lock_expired(path):
                report.stale_locks += 1
                if repair:
                    path.unlink(missing_ok=True)
        else:
            action = "reported"
            if repair:
                store.quarantine_file(path, kind, reason="unexpected file")
                action = "quarantined"
            report.issues.append(FsckIssue(
                path=str(path.relative_to(store.root)), kind=kind,
                problem="unexpected file in the store tree",
                action=action))
    return report


def _scan_kernels(report: FsckReport, repair: bool) -> None:
    """Fold the supervisor's kernel-cache scan into the store report."""
    from repro.fastpath import supervisor
    scan = supervisor.scan_kernel_cache(repair=repair)
    report.kernel_cache = scan.cache_dir
    report.kernel_scanned = scan.scanned
    report.kernel_ok = scan.ok
    report.kernel_orphans = scan.orphans
    for name, problem, action in scan.issues:
        report.issues.append(FsckIssue(
            path=name, kind="kernel", problem=problem, action=action))


def _kind_of(path: Path, version_dir: Path) -> str:
    try:
        return path.relative_to(version_dir).parts[0]
    except (ValueError, IndexError):
        return "?"


def _verify(path: Path, kind: str) -> str | None:
    """None when the envelope verifies; otherwise the problem text."""
    try:
        blob = path.read_bytes()
    except OSError as exc:
        return f"unreadable: {exc}"
    try:
        unpack(blob, expect_kind=kind if kind != "?" else None)
    except TraceIntegrityError as exc:
        return str(exc)
    return None
