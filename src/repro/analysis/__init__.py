"""Program analyses: CFG, dominators, liveness, loops, profiling."""

from repro.analysis.cfg import (dominates, dominators, immediate_dominators,
                                predecessors_map, reverse_postorder,
                                successors_map)
from repro.analysis.liveness import (Liveness, block_use_def,
                                     live_before_each, liveness)
from repro.analysis.loops import Loop, find_loops, innermost_loops
from repro.analysis.pressure import (PressureStats, function_pressure,
                                     program_pressure)
from repro.analysis.profile import Profile

__all__ = [
    "Liveness", "Loop", "PressureStats", "Profile", "block_use_def", "dominates",
    "dominators", "find_loops", "immediate_dominators", "innermost_loops",
    "function_pressure", "live_before_each", "liveness",
    "predecessors_map", "program_pressure", "reverse_postorder",
    "successors_map",
]
