"""Natural loop detection via dominator-based back edges."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import dominators, predecessors_map, successors_map
from repro.ir.function import Function


@dataclass
class Loop:
    """A natural loop: header plus body block labels (header included)."""

    header: str
    body: set[str] = field(default_factory=set)
    #: headers of loops strictly nested inside this one
    children: list["Loop"] = field(default_factory=list)

    @property
    def is_innermost(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        return f"<loop {self.header}: {len(self.body)} blocks>"


def find_loops(fn: Function) -> list[Loop]:
    """All natural loops, merged per header, with nesting links."""
    succs = successors_map(fn)
    preds = predecessors_map(fn)
    dom = dominators(fn)
    loops: dict[str, Loop] = {}
    for block, targets in succs.items():
        if block not in dom:
            continue  # unreachable
        for target in targets:
            if target in dom.get(block, set()):
                # back edge block -> target
                loop = loops.setdefault(target, Loop(target, {target}))
                _collect_body(block, target, preds, loop.body)
    result = list(loops.values())
    # Establish nesting: loop A is a child of B if A's header is inside
    # B's body (and A != B); attach to the smallest enclosing loop.
    for inner in result:
        enclosing = [outer for outer in result
                     if outer is not inner and inner.header in outer.body]
        if enclosing:
            smallest = min(enclosing, key=lambda l: len(l.body))
            smallest.children.append(inner)
    return result


def _collect_body(tail: str, header: str,
                  preds: dict[str, list[str]], body: set[str]) -> None:
    """Add every block that can reach ``tail`` without passing ``header``."""
    stack = [tail]
    while stack:
        block = stack.pop()
        if block in body:
            continue
        body.add(block)
        if block != header:
            stack.extend(preds[block])


def innermost_loops(fn: Function) -> list[Loop]:
    return [l for l in find_loops(fn) if l.is_innermost]
