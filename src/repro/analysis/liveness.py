"""Backward liveness analysis over virtual and predicate registers.

Blocks here are *extended* blocks: superblocks and hyperblocks contain
mid-block exit branches, so the per-block transfer function walks
instructions backward and revives each exit target's live-in set at the
exit's position — a later definite definition must not hide a value the
exit path needs.

The analysis is also predication-aware.  A guarded definition is not a
definite kill (the old value survives a false guard), but it does
satisfy needs that arise only under the *same still-valid guard*: the
need-set for each register tracks the guards under which it is read, a
guarded definition removes its own guard from the set, and redefining a
predicate register promotes needs conditioned on it to unconditional.
This precision is what lets predicate promotion (paper Figure 2) see
single-iteration temporaries as loop-dead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.cfg import predecessors_map, successors_map
from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import OpCategory
from repro.ir.operands import PReg, VReg

Reg = VReg | PReg
#: guard key meaning "needed unconditionally"
ALWAYS = None


@dataclass
class Liveness:
    """Per-block live-in/live-out register sets."""

    live_in: dict[str, frozenset[Reg]] = field(default_factory=dict)
    live_out: dict[str, frozenset[Reg]] = field(default_factory=dict)

    def live_at_exit(self, block: BasicBlock) -> frozenset[Reg]:
        return self.live_out.get(block.name, frozenset())


def _scan_block(insts: list[Instruction], live_out: frozenset[Reg],
                live_in_map: dict[str, frozenset[Reg]],
                record: list | None = None) -> set[Reg]:
    """Backward transfer: registers live before the block.

    ``record``, if given, is filled with the live set *before* each
    instruction (parallel to ``insts``).
    """
    need: dict[Reg, set] = {r: {ALWAYS} for r in live_out}
    if record is not None:
        record.clear()
        record.extend([frozenset()] * len(insts))
    for i in range(len(insts) - 1, -1, -1):
        inst = insts[i]
        defined = inst.defined_regs()
        # Redefining a predicate register invalidates needs conditioned
        # on its (new) value: they refer to the value defined *here*,
        # so for code above this point they are unconditional needs of
        # whatever feeds this define — conservatively promote to ALWAYS.
        for d in defined:
            if isinstance(d, PReg):
                for guards in need.values():
                    if d in guards:
                        guards.discard(d)
                        guards.add(ALWAYS)
        if inst.cat is OpCategory.PREDSET:
            # pred_clear/pred_set definitely define every predicate.
            for guards in need.values():
                if any(isinstance(g, PReg) for g in guards):
                    guards.difference_update(
                        {g for g in guards if isinstance(g, PReg)})
                    guards.add(ALWAYS)
            for r in [r for r in need if isinstance(r, PReg)]:
                del need[r]
        # Kills.
        if not inst.is_conditional_write:
            for d in defined:
                need.pop(d, None)
        elif inst.pred is not None:
            for d in defined:
                guards = need.get(d)
                if guards is not None:
                    guards.discard(inst.pred)
                    if not guards:
                        del need[d]
        # Uses (the guard itself is in used_regs, under ALWAYS: the
        # guard must be readable whenever the instruction is fetched).
        g = inst.pred
        for r in inst.used_regs():
            key = ALWAYS if isinstance(r, PReg) and r == g else g
            need.setdefault(r, set()).add(key)
        if g is not None:
            need.setdefault(g, set()).add(ALWAYS)
        # Mid-block exits revive their target's live-ins, conditioned
        # on the exit's guard.
        if inst.is_control and inst.target is not None \
                and inst.cat is not OpCategory.CALL:
            for r in live_in_map.get(inst.target, frozenset()):
                need.setdefault(r, set()).add(g)
        if record is not None:
            record[i] = frozenset(need)
    return set(need)


def liveness(fn: Function) -> Liveness:
    """Worklist fixpoint, seeded in layout order and driven backward.

    A block is rescanned only when some successor's live-in actually
    grew — the round-robin formulation rescanned the whole function per
    sweep, which is quadratic-ish on the multi-thousand-block CFGs the
    fuzzer's diamond-ladder programs produce.  The transfer functions
    are unchanged and monotone, so the least fixpoint (and therefore
    every client: DCE, promotion, scheduling) is identical.
    """
    succs = successors_map(fn)
    preds = predecessors_map(fn)
    blocks = {b.name: b for b in fn.blocks}
    live_in: dict[str, frozenset[Reg]] = {b.name: frozenset()
                                          for b in fn.blocks}
    live_out: dict[str, frozenset[Reg]] = {b.name: frozenset()
                                           for b in fn.blocks}
    worklist = deque(b.name for b in reversed(fn.blocks))
    queued = set(worklist)
    while worklist:
        name = worklist.popleft()
        queued.discard(name)
        out: set[Reg] = set()
        for s in succs[name]:
            out |= live_in[s]
        new_in = frozenset(_scan_block(blocks[name].instructions,
                                       frozenset(out), live_in))
        live_out[name] = frozenset(out)
        if new_in != live_in[name]:
            live_in[name] = new_in
            for p in preds[name]:
                if p not in queued:
                    queued.add(p)
                    worklist.append(p)
    return Liveness(live_in=dict(live_in), live_out=dict(live_out))


def block_use_def(block: BasicBlock) -> tuple[set[Reg], set[Reg]]:
    """(upward-exposed uses, definitely-defined regs) for one block.

    Provided for diagnostics and tests; :func:`liveness` uses the
    position-aware scan directly.
    """
    uses = _scan_block(block.instructions, frozenset(), {})
    defs: set[Reg] = set()
    for inst in block.instructions:
        if not inst.is_conditional_write:
            defs.update(inst.defined_regs())
        if inst.cat is OpCategory.PREDSET:
            pass  # defines all predicates, but none are enumerable here
    return uses, defs


def live_before_each(block: BasicBlock, live_out: frozenset[Reg],
                     live_in_map: dict[str, frozenset[Reg]] | None = None
                     ) -> list[frozenset[Reg]]:
    """Registers live immediately *before* each instruction of ``block``.

    ``live_in_map`` supplies live-in sets of branch targets so mid-block
    exits revive what their targets need.  Returned list is parallel to
    ``block.instructions``.
    """
    record: list = []
    _scan_block(block.instructions, live_out, live_in_map or {}, record)
    return record
