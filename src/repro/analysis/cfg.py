"""CFG utilities: successor/predecessor maps, orderings, dominators.

All analyses key blocks by label so they stay valid while instruction
lists are edited in place.
"""

from __future__ import annotations

from repro.ir.function import Function


def successors_map(fn: Function) -> dict[str, list[str]]:
    succs: dict[str, list[str]] = {}
    for i, block in enumerate(fn.blocks):
        layout_next = fn.blocks[i + 1].name if i + 1 < len(fn.blocks) \
            else None
        succs[block.name] = block.successor_labels(layout_next)
    return succs


def predecessors_map(fn: Function) -> dict[str, list[str]]:
    preds: dict[str, list[str]] = {b.name: [] for b in fn.blocks}
    for name, succs in successors_map(fn).items():
        for s in succs:
            preds[s].append(name)
    return preds


def reverse_postorder(fn: Function,
                      succs: dict[str, list[str]] | None = None
                      ) -> list[str]:
    """Blocks in reverse postorder from the entry (unreachable excluded)."""
    if succs is None:
        succs = successors_map(fn)
    visited: set[str] = set()
    order: list[str] = []

    def visit(name: str) -> None:
        stack = [(name, iter(succs[name]))]
        visited.add(name)
        while stack:
            label, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, iter(succs[nxt])))
                    advanced = True
                    break
            if not advanced:
                order.append(label)
                stack.pop()

    visit(fn.entry.name)
    order.reverse()
    return order


def dominators(fn: Function) -> dict[str, set[str]]:
    """Classic iterative dominator sets (small CFGs, clarity over speed)."""
    succs = successors_map(fn)
    preds = predecessors_map(fn)
    order = reverse_postorder(fn, succs)
    all_blocks = set(order)
    entry = fn.entry.name
    dom: dict[str, set[str]] = {name: set(all_blocks) for name in order}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for name in order:
            if name == entry:
                continue
            reachable_preds = [p for p in preds[name] if p in dom]
            if not reachable_preds:
                continue
            new = set(all_blocks)
            for p in reachable_preds:
                new &= dom[p]
            new.add(name)
            if new != dom[name]:
                dom[name] = new
                changed = True
    return dom


def immediate_dominators(fn: Function) -> dict[str, str | None]:
    """Immediate dominator of each reachable block (entry maps to None)."""
    dom = dominators(fn)
    idom: dict[str, str | None] = {}
    for name, doms in dom.items():
        strict = doms - {name}
        idom[name] = None
        # The idom is the closest strict dominator: the one every other
        # strict dominator dominates.
        for cand in strict:
            if all(other in dom[cand] or other == cand
                   for other in strict):
                idom[name] = cand
                break
    return idom


def dominates(dom: dict[str, set[str]], a: str, b: str) -> bool:
    """True if block ``a`` dominates block ``b``."""
    return a in dom.get(b, set())
