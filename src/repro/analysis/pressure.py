"""Register pressure statistics.

The paper assumes an infinite register file but notes that partial
predication "requires a larger number of registers to hold intermediate
values" (Section 1): every basic conversion manufactures a temporary.
This analysis makes that cost visible: maximum and average number of
simultaneously live virtual registers, plus predicate register counts,
so the Table-2-style comparison can be extended with pressure data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import live_before_each, liveness
from repro.ir.function import Function, Program
from repro.ir.operands import PReg, VReg


@dataclass(frozen=True)
class PressureStats:
    """Register pressure of one function (or whole program maxima)."""

    max_live_int: int
    max_live_float: int
    max_live_pred: int
    avg_live: float
    total_vregs: int
    total_pregs: int

    def __str__(self) -> str:
        return (f"max live int={self.max_live_int} "
                f"float={self.max_live_float} pred={self.max_live_pred} "
                f"(avg {self.avg_live:.1f}); "
                f"{self.total_vregs} vregs, {self.total_pregs} pregs")


def function_pressure(fn: Function) -> PressureStats:
    """Liveness-based pressure over every program point of ``fn``."""
    live = liveness(fn)
    max_int = max_float = max_pred = 0
    total = 0
    points = 0
    used_vregs: set[VReg] = set()
    used_pregs: set[PReg] = set()
    for block in fn.blocks:
        for inst in block.instructions:
            for r in (*inst.used_regs(), *inst.defined_regs()):
                if isinstance(r, VReg):
                    used_vregs.add(r)
                elif isinstance(r, PReg):
                    used_pregs.add(r)
        per_point = live_before_each(block,
                                     live.live_out[block.name],
                                     live.live_in)
        for regs in per_point:
            ints = sum(1 for r in regs
                       if isinstance(r, VReg) and not r.is_float)
            floats = sum(1 for r in regs
                         if isinstance(r, VReg) and r.is_float)
            preds = sum(1 for r in regs if isinstance(r, PReg))
            max_int = max(max_int, ints)
            max_float = max(max_float, floats)
            max_pred = max(max_pred, preds)
            total += ints + floats + preds
            points += 1
    return PressureStats(
        max_live_int=max_int,
        max_live_float=max_float,
        max_live_pred=max_pred,
        avg_live=total / points if points else 0.0,
        total_vregs=len(used_vregs),
        total_pregs=len(used_pregs),
    )


def program_pressure(program: Program) -> PressureStats:
    """Component-wise maxima over all functions of the program."""
    stats = [function_pressure(fn) for fn in program.functions.values()]
    if not stats:
        return PressureStats(0, 0, 0, 0.0, 0, 0)
    return PressureStats(
        max_live_int=max(s.max_live_int for s in stats),
        max_live_float=max(s.max_live_float for s in stats),
        max_live_pred=max(s.max_live_pred for s in stats),
        avg_live=sum(s.avg_live for s in stats) / len(stats),
        total_vregs=sum(s.total_vregs for s in stats),
        total_pregs=sum(s.total_pregs for s in stats),
    )
