"""Execution profiles for profile-driven region formation.

The superblock and hyperblock formation algorithms are both driven by the
measured run of the program (paper Sections 3.1 and 4.1): block execution
frequencies select seeds, and branch probabilities steer trace growth and
block selection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.emu.trace import ExecutionResult
from repro.ir.function import Function, Program
from repro.ir.opcodes import OpCategory, Opcode


@dataclass
class Profile:
    """Block-entry counts and branch outcome counts from a training run."""

    block_counts: dict[tuple[str, str], int]
    #: uid -> [not_taken, taken]
    branch_outcomes: dict[int, list[int]]

    @classmethod
    def from_execution(cls, result: ExecutionResult) -> "Profile":
        return cls(block_counts=dict(result.block_counts),
                   branch_outcomes={k: list(v) for k, v
                                    in result.branch_outcomes.items()})

    @classmethod
    def collect(cls, program: Program,
                inputs: dict[str, list[int | float] | bytes] | None = None,
                max_steps: int = 50_000_000) -> "Profile":
        """Run the program on training inputs and gather a profile.

        Uses the fastpath interpreter (no trace is needed); its
        block/branch profiles are bit-identical to the legacy loop's.
        """
        from repro.fastpath.interp import run_program_fast
        return cls.from_execution(run_program_fast(program, inputs=inputs,
                                                   max_steps=max_steps))

    # ----- queries ----------------------------------------------------------

    def block_count(self, fn: str, label: str) -> int:
        return self.block_counts.get((fn, label), 0)

    def taken_probability(self, uid: int) -> float:
        """P(taken) for a conditional branch; 0.5 when never executed."""
        counts = self.branch_outcomes.get(uid)
        if not counts or (counts[0] + counts[1]) == 0:
            return 0.5
        return counts[1] / (counts[0] + counts[1])

    def taken_count(self, uid: int) -> int:
        counts = self.branch_outcomes.get(uid)
        return counts[1] if counts else 0

    def edge_counts(self, fn: Function) -> dict[tuple[str, str], int]:
        """Approximate CFG edge execution counts for one function.

        Walks each block's control instructions in order, splitting the
        block's entry count between taken targets and the fall-through
        according to recorded branch outcomes.
        """
        edges: dict[tuple[str, str], int] = {}
        for i, block in enumerate(fn.blocks):
            remaining = self.block_count(fn.name, block.name)
            layout_next = fn.blocks[i + 1].name \
                if i + 1 < len(fn.blocks) else None
            terminated = False
            for inst in block.instructions:
                if inst.cat is OpCategory.BRANCH:
                    taken = self.taken_count(inst.uid)
                    taken = min(taken, remaining)
                    edges[(block.name, inst.target)] = \
                        edges.get((block.name, inst.target), 0) + taken
                    remaining -= taken
                elif inst.op is Opcode.JUMP and inst.pred is None:
                    edges[(block.name, inst.target)] = \
                        edges.get((block.name, inst.target), 0) + remaining
                    remaining = 0
                    terminated = True
                    break
                elif inst.op is Opcode.RET and inst.pred is None:
                    remaining = 0
                    terminated = True
                    break
            if not terminated and layout_next is not None and remaining > 0:
                edges[(block.name, layout_next)] = \
                    edges.get((block.name, layout_next), 0) + remaining
        return edges
