"""Full-predication → partial-predication lowering (paper Section 3.2).

The compiler keeps a fully predicated IR regardless of the target's
actual predication support.  For targets with only conditional moves (or
selects), every remnant of predication is lowered here:

* predicate registers become ordinary integer virtual registers;
* predicate define instructions become comparison/logic sequences
  (Figure 3, ``predicate definition instructions``), with the
  comparison-inversion peephole built in (complement types use the
  inverted comparison or ``and_not`` instead of a second compare);
* guarded arithmetic/logic/loads become speculative computations into a
  temporary followed by a ``cmov`` (Figure 3); in *excepting* mode the
  Figure 4 sequences guard the source operands with ``$safe_val`` /
  ``$safe_addr`` instead of relying on silent instructions;
* guarded stores redirect their address to ``$safe_addr`` via
  ``cmov_com``;
* guarded branches use the paper's compare-inversion trick
  (``blt s1,s2,L (p)`` → ``ge t,s1,s2; blt t,p,L``), guarded jumps
  become ``bne p,0,L``, and guarded returns branch to a synthesized
  return block.

After conversion the code contains no predicate machinery and verifies
at ISA level PARTIAL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.emu.memory import SAFE_ADDR
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instruction import Instruction, PType
from repro.ir.opcodes import (MAY_EXCEPT, OpCategory, Opcode, category,
                              inverse, opcode_for_condition)
from repro.ir.operands import (GlobalAddr, Imm, Operand, PReg,
                               RegClass, VReg)


class ConversionError(Exception):
    """The instruction cannot be represented with partial predication."""


@dataclass(frozen=True)
class ConversionParams:
    """Lowering options.

    ``non_excepting`` selects the Figure 3 sequences (silent instructions
    available, the paper's evaluated configuration); False selects the
    Figure 4 sequences.  ``use_select`` allows ``select`` instructions,
    which shorten the excepting sequences by one instruction.
    """

    non_excepting: bool = True
    use_select: bool = False


#: ``$safe_val``: a source operand value guaranteed not to fault
#: (divide-by-zero avoidance).
SAFE_VAL = 1

_PRED_CMP = {
    Opcode.PRED_EQ: Opcode.CMP_EQ, Opcode.PRED_NE: Opcode.CMP_NE,
    Opcode.PRED_LT: Opcode.CMP_LT, Opcode.PRED_LE: Opcode.CMP_LE,
    Opcode.PRED_GT: Opcode.CMP_GT, Opcode.PRED_GE: Opcode.CMP_GE,
}


class _Converter:
    def __init__(self, fn: Function, params: ConversionParams):
        self.fn = fn
        self.params = params
        self.preg_map: dict[PReg, VReg] = {}
        self.out: list[Instruction] = []
        self.extra_blocks: list[BasicBlock] = []
        self.ret_counter = 0

    # ----- helpers ---------------------------------------------------------

    def preg(self, p: PReg) -> VReg:
        reg = self.preg_map.get(p)
        if reg is None:
            reg = self.fn.new_vreg()
            self.preg_map[p] = reg
        return reg

    def map_operand(self, op: Operand) -> Operand:
        if isinstance(op, PReg):
            return self.preg(op)
        return op

    def emit(self, op: Opcode, dest: VReg | None = None,
             srcs: tuple[Operand, ...] = (), target: str | None = None,
             speculative: bool = False) -> None:
        self.out.append(Instruction(op, dest=dest, srcs=srcs,
                                    target=target, speculative=speculative))

    def tmp(self, rclass: RegClass = RegClass.INT) -> VReg:
        return self.fn.new_vreg(rclass)

    # ----- predicate defines -------------------------------------------------

    _CMP_EVAL = {"eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
                 "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
                 "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b}

    def _convert_constant_define(self, inst: Instruction,
                                 result: bool) -> None:
        """Define whose comparison is a compile-time constant.

        Contribution defines from unconditional in-region edges have the
        shape ``pred_eq P<OR>, #0, #0 (pin)``; lowering them to a single
        logic instruction avoids dead compare/and chains.
        """
        pin: Operand = self.preg(inst.pred) if inst.pred is not None \
            else Imm(1)
        for pd in inst.pdests:
            dest = self.preg(pd.reg)
            ptype = pd.ptype
            effective = result if not ptype.is_bar else not result
            base = ptype if not ptype.is_bar else ptype.complement
            if base is PType.U:
                # dest = pin & effective
                src = pin if effective else Imm(0)
                self.emit(Opcode.MOV, dest=dest, srcs=(src,))
            elif base is PType.OR:
                if effective:
                    self.emit(Opcode.OR, dest=dest, srcs=(dest, pin))
            else:  # AND family: clear when pin & !effective
                if not effective:
                    self.emit(Opcode.AND_NOT, dest=dest,
                              srcs=(dest, pin))

    def convert_pred_define(self, inst: Instruction) -> None:
        cmp_op = _PRED_CMP[inst.op]
        srcs = tuple(self.map_operand(s) for s in inst.srcs)
        if all(isinstance(s, Imm) for s in srcs):
            cond = inst.condition
            assert cond is not None
            self._convert_constant_define(
                inst, bool(self._CMP_EVAL[cond](srcs[0].value,
                                                srcs[1].value)))
            return
        pin = self.preg(inst.pred) if inst.pred is not None else None
        normal_cmp: VReg | None = None
        inverted_cmp: VReg | None = None

        def get_cmp(complement: bool) -> VReg:
            # Comparison inversion: complement types reuse the inverted
            # comparison opcode instead of a second compare + negate.
            nonlocal normal_cmp, inverted_cmp
            if complement:
                if inverted_cmp is None:
                    inverted_cmp = self.tmp()
                    self.emit(inverse(cmp_op), dest=inverted_cmp,
                              srcs=srcs)
                return inverted_cmp
            if normal_cmp is None:
                normal_cmp = self.tmp()
                self.emit(cmp_op, dest=normal_cmp, srcs=srcs)
            return normal_cmp

        for pd in inst.pdests:
            dest = self.preg(pd.reg)
            ptype = pd.ptype
            if ptype is PType.U or ptype is PType.U_BAR:
                if pin is None:
                    # Compute straight into the predicate's register.
                    self.emit(inverse(cmp_op) if ptype is PType.U_BAR
                              else cmp_op, dest=dest, srcs=srcs)
                elif ptype is PType.U:
                    self.emit(Opcode.AND, dest=dest,
                              srcs=(pin, get_cmp(False)))
                else:  # U_BAR: pin & !cmp
                    self.emit(Opcode.AND_NOT, dest=dest,
                              srcs=(pin, get_cmp(False)))
            elif ptype is PType.OR or ptype is PType.OR_BAR:
                cond = get_cmp(ptype is PType.OR_BAR)
                if pin is None:
                    self.emit(Opcode.OR, dest=dest, srcs=(dest, cond))
                else:
                    contrib = self.tmp()
                    self.emit(Opcode.AND, dest=contrib, srcs=(pin, cond))
                    self.emit(Opcode.OR, dest=dest, srcs=(dest, contrib))
            elif ptype is PType.AND or ptype is PType.AND_BAR:
                if pin is None:
                    # AND keeps P only while cmp holds; AND~ while !cmp.
                    cond = get_cmp(ptype is PType.AND_BAR)
                    self.emit(Opcode.AND, dest=dest, srcs=(dest, cond))
                else:
                    # The clobber term is the clear condition:
                    # AND clears on pin & !cmp, AND~ on pin & cmp.
                    cond = get_cmp(ptype is PType.AND)
                    clobber = self.tmp()
                    self.emit(Opcode.AND, dest=clobber, srcs=(pin, cond))
                    self.emit(Opcode.AND_NOT, dest=dest,
                              srcs=(dest, clobber))
            else:  # pragma: no cover - all six types handled
                raise ConversionError(f"unknown predicate type {ptype}")

    def convert_pred_set(self, inst: Instruction,
                         block_pregs: list[PReg]) -> None:
        value = Imm(1 if inst.op is Opcode.PRED_SET else 0)
        for p in block_pregs:
            self.emit(Opcode.MOV, dest=self.preg(p), srcs=(value,))

    # ----- guarded computation -------------------------------------------------

    def _cmov(self, dest: VReg, src: Operand, cond: Operand,
              complement: bool = False) -> None:
        if dest.is_float:
            op = Opcode.FCMOV_COM if complement else Opcode.FCMOV
        else:
            op = Opcode.CMOV_COM if complement else Opcode.CMOV
        self.emit(op, dest=dest, srcs=(src, cond))

    def convert_guarded_compute(self, inst: Instruction) -> None:
        pv = self.preg(inst.pred)
        srcs = tuple(self.map_operand(s) for s in inst.srcs)
        dest = inst.dest
        assert dest is not None
        # Guarded moves become a single conditional move.
        if inst.op in (Opcode.MOV, Opcode.FMOV):
            self._cmov(dest, srcs[0], pv)
            return
        excepting = inst.op in MAY_EXCEPT and not inst.speculative
        if excepting and not self.params.non_excepting:
            self._convert_excepting(inst, pv, srcs)
            return
        tmp = self.tmp(dest.rclass)
        self.emit(inst.op, dest=tmp, srcs=srcs,
                  speculative=excepting or inst.speculative)
        self._cmov(dest, tmp, pv)

    def _convert_excepting(self, inst: Instruction, pv: VReg,
                           srcs: tuple[Operand, ...]) -> None:
        """Figure 4 sequences: guard the faulting source operand."""
        dest = inst.dest
        assert dest is not None
        if inst.cat is OpCategory.LOAD:
            addr = self.tmp()
            self.emit(Opcode.ADD, dest=addr, srcs=(srcs[0], srcs[1]))
            self._cmov(addr, Imm(SAFE_ADDR), pv, complement=True)
            tmp = self.tmp(dest.rclass)
            self.emit(inst.op, dest=tmp, srcs=(addr, Imm(0)))
            self._cmov(dest, tmp, pv)
            return
        # Divide/remainder: substitute $safe_val for the divisor.
        divisor_class = RegClass.FLOAT if inst.op is Opcode.FDIV \
            else RegClass.INT
        safe = Imm(float(SAFE_VAL)) if divisor_class is RegClass.FLOAT \
            else Imm(SAFE_VAL)
        tmp_src = self.tmp(divisor_class)
        if self.params.use_select:
            sel = Opcode.FSELECT if divisor_class is RegClass.FLOAT \
                else Opcode.SELECT
            self.emit(sel, dest=tmp_src, srcs=(srcs[1], safe, pv))
        else:
            mov = Opcode.FMOV if divisor_class is RegClass.FLOAT \
                else Opcode.MOV
            self.emit(mov, dest=tmp_src, srcs=(srcs[1],))
            self._cmov(tmp_src, safe, pv, complement=True)
        tmp_dest = self.tmp(dest.rclass)
        self.emit(inst.op, dest=tmp_dest, srcs=(srcs[0], tmp_src))
        self._cmov(dest, tmp_dest, pv)

    def convert_guarded_store(self, inst: Instruction) -> None:
        pv = self.preg(inst.pred)
        srcs = tuple(self.map_operand(s) for s in inst.srcs)
        addr = self.tmp()
        self.emit(Opcode.ADD, dest=addr, srcs=(srcs[0], srcs[1]))
        if self.params.use_select:
            self.emit(Opcode.SELECT, dest=addr,
                      srcs=(addr, Imm(SAFE_ADDR), pv))
        else:
            self._cmov(addr, Imm(SAFE_ADDR), pv, complement=True)
        store = Instruction(inst.op, srcs=(addr, Imm(0), srcs[2]))
        # The only addresses this store can take are the original object
        # and $safe_addr; record the object for alias analysis.
        base = inst.srcs[0]
        if isinstance(base, GlobalAddr):
            store.mem_hint = base.name
        self.out.append(store)

    # ----- guarded control ---------------------------------------------------------

    def convert_guarded_branch(self, inst: Instruction) -> None:
        pv = self.preg(inst.pred)
        srcs = tuple(self.map_operand(s) for s in inst.srcs)
        # Paper Figure 3: invert the compare, then take the branch when
        # the inverted result (0) is less than the predicate (1).
        tmp = self.tmp()
        self.emit(inverse(opcode_for_condition(OpCategory.CMP,
                                               inst.condition)),
                  dest=tmp, srcs=srcs)
        self.emit(Opcode.BLT, srcs=(tmp, pv), target=inst.target)

    def convert_guarded_jump(self, inst: Instruction) -> None:
        pv = self.preg(inst.pred)
        self.emit(Opcode.BNE, srcs=(pv, Imm(0)), target=inst.target)

    def convert_guarded_ret(self, inst: Instruction) -> None:
        pv = self.preg(inst.pred)
        self.ret_counter += 1
        name = f"ret.{self.ret_counter}"
        while any(b.name == name for b in self.fn.blocks) \
                or any(b.name == name for b in self.extra_blocks):
            self.ret_counter += 1
            name = f"ret.{self.ret_counter}"
        ret_block = BasicBlock(name)
        ret_block.append(Instruction(
            Opcode.RET, srcs=tuple(self.map_operand(s)
                                   for s in inst.srcs)))
        self.extra_blocks.append(ret_block)
        self.emit(Opcode.BNE, srcs=(pv, Imm(0)), target=name)

    # ----- driver ---------------------------------------------------------------------

    def convert_block(self, block: BasicBlock) -> None:
        self.out = []
        # Predicates needing explicit initialization on pred_clear/set:
        # those with accumulating (OR/AND) contributions in this block.
        accumulating: list[PReg] = []
        seen: set[PReg] = set()
        for inst in block.instructions:
            for pd in inst.pdests:
                if pd.ptype in (PType.OR, PType.OR_BAR, PType.AND,
                                PType.AND_BAR) and pd.reg not in seen:
                    seen.add(pd.reg)
                    accumulating.append(pd.reg)
        for inst in block.instructions:
            cat = inst.cat
            if cat is OpCategory.PREDDEF:
                self.convert_pred_define(inst)
            elif cat is OpCategory.PREDSET:
                self.convert_pred_set(inst, accumulating)
            elif inst.pred is None:
                mapped = inst.copy(
                    srcs=tuple(self.map_operand(s) for s in inst.srcs))
                self.out.append(mapped)
            elif cat in (OpCategory.ALU, OpCategory.CMP, OpCategory.FALU,
                         OpCategory.FCMP, OpCategory.LOAD):
                self.convert_guarded_compute(inst)
            elif cat is OpCategory.STORE:
                self.convert_guarded_store(inst)
            elif cat is OpCategory.BRANCH:
                self.convert_guarded_branch(inst)
            elif cat is OpCategory.JUMP:
                self.convert_guarded_jump(inst)
            elif cat is OpCategory.RET:
                self.convert_guarded_ret(inst)
            else:
                raise ConversionError(
                    f"cannot lower predicated {inst!r} to partial "
                    f"predication")
        block.instructions = self.out


def convert_to_partial(fn: Function,
                       params: ConversionParams | None = None) -> None:
    """Lower all predication in ``fn`` to cmov/select sequences."""
    if params is None:
        params = ConversionParams()
    conv = _Converter(fn, params)
    for block in list(fn.blocks):
        conv.convert_block(block)
    fn.blocks.extend(conv.extra_blocks)


def convert_program_to_partial(program: Program,
                               params: ConversionParams | None = None
                               ) -> None:
    for fn in program.functions.values():
        convert_to_partial(fn, params)
