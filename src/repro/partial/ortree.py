"""Associativity-based height reduction of logic chains (paper §3.2).

With full predicate support, OR-type defines targeting the same predicate
issue simultaneously (wired-OR), and AND-type defines likewise.  After
partial-predication lowering the same computations are sequential
read-modify-write chains::

    mov  P, 0                     |  <init P>
    or   P, P, t1                 |  and_not P, P, t1
    or   P, P, t2                 |  and_not P, P, t2
    or   P, P, tn                 |  and_not P, P, tn

whose dependence height is ``n``.  Using associativity each chain is
rebuilt with a balanced tree of fresh temporaries:

* ``or`` chains become an OR tree of the terms (height ``log2(n)``),
  optionally absorbing a ``mov P, 0`` initializer;
* ``and`` chains become ``and P, P, <AND-tree of terms>``;
* ``and_not`` chains use De Morgan:
  ``P ∧ ¬t1 ∧ … ∧ ¬tn  =  P ∧ ¬(t1 ∨ … ∨ tn)``, i.e. a single
  ``and_not`` of an OR tree of the terms.

This is the optimization that makes partial predication competitive on
the grep loop (paper Figure 6) — and its remaining-height contrast with
full predication's zero-height wired-OR is the paper's core asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, Operand, VReg


@dataclass
class _Chain:
    reg: VReg
    op: Opcode                     # OR, AND, or AND_NOT
    init_index: int | None         # position of `mov P, 0` (OR chains)
    indices: list[int] = field(default_factory=list)
    terms: list[Operand] = field(default_factory=list)
    valid: bool = True


_CHAIN_OPS = (Opcode.OR, Opcode.AND, Opcode.AND_NOT)


def _find_chains(block: BasicBlock) -> list[_Chain]:
    chains: dict[VReg, _Chain] = {}
    completed: list[_Chain] = []

    def close(reg: VReg) -> None:
        chain = chains.pop(reg, None)
        if chain is not None and chain.valid and chain.indices:
            completed.append(chain)

    for i, inst in enumerate(block.instructions):
        if inst.op is Opcode.MOV and inst.dest is not None \
                and isinstance(inst.srcs[0], Imm) \
                and inst.srcs[0].value == 0:
            # Potential start of an OR chain with explicit zero init.
            close(inst.dest)
            chains[inst.dest] = _Chain(inst.dest, Opcode.OR, i)
            continue
        if inst.op in _CHAIN_OPS and inst.dest is not None \
                and inst.srcs[0] == inst.dest \
                and inst.srcs[1] != inst.dest and inst.pred is None:
            chain = chains.get(inst.dest)
            if chain is not None and chain.valid \
                    and (chain.op is inst.op
                         or (not chain.indices
                             and chain.init_index is not None
                             and inst.op is Opcode.OR)):
                chain.indices.append(i)
                chain.terms.append(inst.srcs[1])
                continue
            # Operator change or fresh start: accumulate on the current
            # value (AND / AND_NOT, or OR without explicit init).
            close(inst.dest)
            chains[inst.dest] = _Chain(inst.dest, inst.op, None,
                                       [i], [inst.srcs[1]])
            continue
        # Any other instruction touching a chained register closes its
        # chain at this point: the accumulated value becomes observable,
        # so only the contributions so far are rebuilt — inserted at the
        # last contribution's position, before this observer.
        touched = set(inst.used_regs()) | set(inst.defined_regs())
        for reg in [r for r in chains if r in touched]:
            close(reg)
    for reg in list(chains):
        close(reg)
    minimum = 3
    return [c for c in completed if len(c.terms) >= minimum]


def _balanced_tree(fn: Function, op: Opcode,
                   terms: list[Operand]) -> tuple[list[Instruction],
                                                  Operand]:
    """Combine ``terms`` with ``op`` in a balanced tree; returns
    (instructions, root operand)."""
    level = list(terms)
    out: list[Instruction] = []
    while len(level) > 1:
        nxt: list[Operand] = []
        for j in range(0, len(level) - 1, 2):
            dest = fn.new_vreg()
            out.append(Instruction(op, dest=dest,
                                   srcs=(level[j], level[j + 1])))
            nxt.append(dest)
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return out, level[0]


def reduce_or_trees(fn: Function, block: BasicBlock) -> int:
    """Rebuild eligible logic chains as balanced trees.

    Returns the number of chains transformed.
    """
    chains = _find_chains(block)
    if not chains:
        return 0
    remove: set[int] = set()
    insert_at: dict[int, list[Instruction]] = {}
    for chain in chains:
        remove.update(chain.indices)
        tree: list[Instruction]
        if chain.op is Opcode.OR:
            if chain.init_index is not None:
                remove.add(chain.init_index)
            tree, root = _balanced_tree(fn, Opcode.OR, chain.terms)
            if chain.init_index is not None:
                # P was zero-initialized: the tree value is P's value.
                tree.append(Instruction(Opcode.MOV, dest=chain.reg,
                                        srcs=(root,)))
            else:
                tree.append(Instruction(Opcode.OR, dest=chain.reg,
                                        srcs=(chain.reg, root)))
        elif chain.op is Opcode.AND:
            tree, root = _balanced_tree(fn, Opcode.AND, chain.terms)
            tree.append(Instruction(Opcode.AND, dest=chain.reg,
                                    srcs=(chain.reg, root)))
        else:  # AND_NOT: De Morgan — single and_not of the OR tree.
            tree, root = _balanced_tree(fn, Opcode.OR, chain.terms)
            tree.append(Instruction(Opcode.AND_NOT, dest=chain.reg,
                                    srcs=(chain.reg, root)))
        insert_at.setdefault(chain.indices[-1], []).extend(tree)

    new_insts: list[Instruction] = []
    for i, inst in enumerate(block.instructions):
        if i in insert_at:
            new_insts.extend(insert_at[i])
        if i not in remove:
            new_insts.append(inst)
    block.instructions = new_insts
    return len(chains)


def reduce_function_or_trees(fn: Function) -> int:
    total = 0
    for block in fn.blocks:
        total += reduce_or_trees(fn, block)
    return total
