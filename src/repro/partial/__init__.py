"""Partial-predication lowering: basic conversions, peephole cleanup,
OR-tree height reduction."""

from repro.partial.conversion import (SAFE_VAL, ConversionError,
                                      ConversionParams,
                                      convert_program_to_partial,
                                      convert_to_partial)
from repro.partial.ortree import reduce_function_or_trees, reduce_or_trees

__all__ = [
    "SAFE_VAL", "ConversionError", "ConversionParams",
    "convert_program_to_partial", "convert_to_partial",
    "reduce_function_or_trees", "reduce_or_trees",
]
