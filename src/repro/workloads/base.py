"""Workload infrastructure: benchmark definitions and deterministic
input generation.

Each workload re-implements the *kernel* of one of the paper's
benchmarks (SPEC-92 subset + Unix utilities) in MiniC, on synthetic
inputs from a seeded generator, scaled so a run produces tens of
thousands to a few hundred thousand dynamic instructions (see DESIGN.md
for the scaling substitution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

_MASK64 = (1 << 64) - 1


class DeterministicRandom:
    """64-bit LCG so inputs are identical across Python versions."""

    _MUL = 6364136223846793005
    _INC = 1442695040888963407

    def __init__(self, seed: int):
        self.state = (seed ^ 0x9E3779B97F4A7C15) & _MASK64

    def next_u32(self) -> int:
        self.state = (self.state * self._MUL + self._INC) & _MASK64
        return (self.state >> 32) & 0xFFFFFFFF

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        span = high - low + 1
        return low + self.next_u32() % span

    def choice(self, seq):
        return seq[self.next_u32() % len(seq)]

    def shuffle(self, items: list) -> None:
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u32() % (i + 1)
            items[i], items[j] = items[j], items[i]

    def text(self, length: int, words: list[str],
             newline_every: int = 8) -> bytes:
        """Space/newline separated pseudo-text of roughly ``length``."""
        parts: list[str] = []
        count = 0
        size = 0
        while size < length:
            word = self.choice(words)
            parts.append(word)
            size += len(word) + 1
            count += 1
            parts.append("\n" if count % newline_every == 0 else " ")
        return "".join(parts).encode()[:length]


@dataclass(frozen=True)
class Workload:
    """One benchmark: MiniC source plus input builders.

    ``scale`` multiplies input sizes; the experiment harness uses small
    scales for quick runs and larger ones for the headline figures.
    ``expected`` optionally maps a scale to the known-correct return
    value (cross-model result checking happens regardless).
    """

    name: str
    description: str
    source: str
    build_inputs: Callable[[float], dict[str, list[int | float]]]
    #: paper benchmark this kernel stands in for
    stands_for: str = ""
    category: str = "integer"

    def inputs(self, scale: float = 1.0) -> dict[str, list[int | float]]:
        return self.build_inputs(scale)


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> list[Workload]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def workload_names() -> list[str]:
    _ensure_loaded()
    return list(_REGISTRY)


def _ensure_loaded() -> None:
    # Import benchmark modules for their registration side effects.
    from repro.workloads import (alvinn, cccp, cmp, compress, ear, eqn,
                                 eqntott, espresso, grep, li, lex, qsort,
                                 sc, wc, yacc)
    del (alvinn, cccp, cmp, compress, ear, eqn, eqntott, espresso, grep,
         li, lex, qsort, sc, wc, yacc)
