"""espresso — two-level logic minimizer cube operations.

008.espresso manipulates cubes (bit-vector terms): the kernel here is
cube distance/containment testing over pairs of cubes, a doubly nested
loop of masked comparisons and conditional counting.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
int cubes[4096];
int ncubes;
int width;

int distance(int a, int b) {
  int k;
  int d;
  int va;
  int vb;
  int meet;
  d = 0;
  for (k = 0; k < width; k = k + 1) {
    va = cubes[a * width + k];
    vb = cubes[b * width + k];
    meet = va & vb;
    if (meet == 0) d = d + 1;
  }
  return d;
}

int contains(int a, int b) {
  int k;
  int va;
  int vb;
  for (k = 0; k < width; k = k + 1) {
    va = cubes[a * width + k];
    vb = cubes[b * width + k];
    if ((va & vb) != vb) return 0;
  }
  return 1;
}

int main() {
  int i;
  int j;
  int mergeable;
  int covered;
  mergeable = 0;
  covered = 0;
  for (i = 0; i < ncubes; i = i + 1) {
    for (j = i + 1; j < ncubes; j = j + 1) {
      if (distance(i, j) == 1) mergeable = mergeable + 1;
      if (contains(i, j)) covered = covered + 1;
    }
  }
  return mergeable * 1000 + covered;
}
"""


def _inputs(scale: float):
    rng = DeterministicRandom(808)
    width = 8
    ncubes = max(6, min(64, int(22 * scale)))
    cubes = []
    for _ in range(ncubes * width):
        # Each position is a 2-bit "care" code; 3 = don't care (common).
        roll = rng.randint(0, 9)
        cubes.append(3 if roll < 6 else rng.randint(1, 2))
    return {"cubes": cubes, "ncubes": [ncubes], "width": [width]}


ESPRESSO = register(Workload(
    name="espresso",
    description="cube distance/containment over bit-vector terms",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="SPEC-92 008.espresso",
))
