"""eqntott — the cmppt bit-vector comparison kernel.

023.eqntott spends most of its time comparing arrays of 2-bit values to
order truth-table rows; the loop is a chain of biased early-out
branches, historically the canonical conditional-move showcase.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
int pta[4096];
int ptb[4096];
int nterms;
int width;
int order;

int cmppt(int a, int b) {
  int k;
  int va;
  int vb;
  for (k = 0; k < width; k = k + 1) {
    va = pta[a * width + k];
    vb = ptb[b * width + k];
    if (va < vb) return 0 - 1;
    if (va > vb) return 1;
  }
  return 0;
}

int main() {
  int i;
  int balance;
  balance = 0;
  order = 0;
  for (i = 0; i < nterms; i = i + 1) {
    order = cmppt(i, i);
    balance = balance + order;
    if (order == 0) balance = balance + 1;
  }
  return balance;
}
"""


def _inputs(scale: float):
    rng = DeterministicRandom(2323)
    width = 16
    nterms = max(8, min(250, int(90 * scale)))
    pta = []
    ptb = []
    for _ in range(nterms * width):
        value = rng.randint(0, 3)
        pta.append(value)
        # Mostly equal, with sparse perturbations near the tail so the
        # early-out branches are strongly biased.
        if rng.randint(0, 99) < 6:
            ptb.append(rng.randint(0, 3))
        else:
            ptb.append(value)
    return {"pta": pta, "ptb": ptb, "nterms": [nterms],
            "width": [width]}


EQNTOTT = register(Workload(
    name="eqntott",
    description="2-bit truth-table comparison (cmppt kernel)",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="SPEC-92 023.eqntott",
))
