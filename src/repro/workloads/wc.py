"""wc — the Unix word counter (the paper's Figure 5 case study).

The kernel is the character-scanning state machine: small basic blocks,
a very high fraction of branches, and an in-word flag carried across
iterations.  This is the loop the paper dissects to show full
predication collapsing the whole body into one hyperblock.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
char buf[8192];
int n;
int nl;
int nw;
int nc;

int main() {
  int i;
  int inword;
  int c;
  inword = 0;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    nc = nc + 1;
    if (c == '\\n') nl = nl + 1;
    if (c == ' ' || c == '\\n' || c == '\\t') inword = 0;
    else if (!inword) { inword = 1; nw = nw + 1; }
  }
  return nl * 100000 + nw * 100 + nc % 100;
}
"""

_WORDS = ["the", "predication", "of", "branches", "in", "ilp",
          "processors", "is", "a", "comparison", "full", "partial",
          "support", "x", "compilers"]


def _inputs(scale: float):
    rng = DeterministicRandom(1995)
    length = max(64, min(8192, int(3000 * scale)))
    text = rng.text(length, _WORDS, newline_every=7)
    return {"buf": list(text), "n": [len(text)]}


WC = register(Workload(
    name="wc",
    description="word/line/char count state machine",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="Unix wc (paper Figure 5 example loop)",
))
