"""yacc — shift/reduce parser loop.

An LR-style automaton over a synthetic token stream: table-driven
shift/reduce decisions, a state stack in memory, and validity branches
— the classic parser inner loop that yacc-generated code runs.

The grammar is a small arithmetic expression grammar handled with
operator precedence (shift if incoming precedence is higher, else
reduce), so the decision branch is data-dependent.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

#: tokens: 0 number, 1 '+', 2 '*', 3 '(', 4 ')', 5 end
SOURCE = """
int tokens[4096];
int ntok;
int stack[256];
int prec[8];

int main() {
  int sp;
  int i;
  int tok;
  int shifts;
  int reduces;
  int errors;
  int top;
  sp = 0;
  shifts = 0;
  reduces = 0;
  errors = 0;
  for (i = 0; i < ntok; i = i + 1) {
    tok = tokens[i];
    if (tok == 0) {
      stack[sp] = 0;
      sp = sp + 1;
      shifts = shifts + 1;
      if (sp > 250) sp = 1;
    } else if (tok == 3) {
      stack[sp] = 3;
      sp = sp + 1;
      shifts = shifts + 1;
      if (sp > 250) sp = 1;
    } else if (tok == 4) {
      while (sp > 0 && stack[sp - 1] != 3) {
        sp = sp - 1;
        reduces = reduces + 1;
      }
      if (sp > 0) sp = sp - 1;
      else errors = errors + 1;
    } else {
      top = 0 - 1;
      if (sp > 0) top = stack[sp - 1];
      while (sp > 0 && top != 3 && prec[top] >= prec[tok]) {
        sp = sp - 1;
        reduces = reduces + 1;
        top = 0 - 1;
        if (sp > 0) top = stack[sp - 1];
      }
      stack[sp] = tok;
      sp = sp + 1;
      shifts = shifts + 1;
      if (sp > 250) sp = 1;
    }
  }
  return shifts * 10000 + reduces * 10 + errors;
}
"""


def _inputs(scale: float):
    rng = DeterministicRandom(9090)
    ntok = max(64, min(4000, int(1400 * scale)))
    tokens = []
    depth = 0
    for _ in range(ntok):
        roll = rng.randint(0, 9)
        if roll < 4:
            tokens.append(0)               # number
        elif roll < 6:
            tokens.append(1)               # '+'
        elif roll < 8:
            tokens.append(2)               # '*'
        elif roll == 8 and depth < 8:
            tokens.append(3)               # '('
            depth += 1
        elif depth > 0:
            tokens.append(4)               # ')'
            depth -= 1
        else:
            tokens.append(0)
    prec = [1, 2, 3, 0, 0, 0, 0, 0]
    return {"tokens": tokens, "ntok": [len(tokens)], "prec": prec}


YACC = register(Workload(
    name="yacc",
    description="operator-precedence shift/reduce parser loop",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="Unix yacc",
))
