"""cmp — byte-wise file comparison.

Two nearly identical buffers are compared byte by byte; the loop's
branches are overwhelmingly biased (equal), which is why the paper's
Table 3 shows predication dropping cmp's mispredictions from thousands
to almost zero: the compare-and-exit branches fold into predicates.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
char a[8192];
char b[8192];
int n;
int diffs;
int firstdiff;

int main() {
  int i;
  int ca;
  int cb;
  int lines;
  lines = 0;
  firstdiff = 0 - 1;
  for (i = 0; i < n; i = i + 1) {
    ca = a[i];
    cb = b[i];
    if (ca == '\\n') lines = lines + 1;
    if (ca != cb) {
      diffs = diffs + 1;
      if (firstdiff < 0) firstdiff = i;
    }
  }
  return diffs * 100000 + (firstdiff + 1) * 10 + lines % 10;
}
"""

_WORDS = ["compare", "bytes", "equal", "until", "difference", "found",
          "stream", "of", "data"]


def _inputs(scale: float):
    rng = DeterministicRandom(4242)
    length = max(128, min(8100, int(2800 * scale)))
    first = bytearray(rng.text(length, _WORDS, newline_every=10))
    second = bytearray(first)
    # A handful of scattered differences.
    for _ in range(max(1, length // 900)):
        pos = rng.randint(length // 2, length - 1)
        second[pos] = (second[pos] + 1) % 256
    return {"a": list(first), "b": list(second), "n": [length]}


CMP = register(Workload(
    name="cmp",
    description="biased byte-comparison loop",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="Unix cmp",
))
