"""grep — pattern scan (the paper's Figure 6 case study).

The hot loop advances through the buffer until one of several rarely
true conditions fires: first pattern character seen, end of line, end of
buffer.  With one branch slot the scan is branch-bound; hyperblock
formation plus branch combining collapses the rare exits into a single
OR-predicated branch — and makes that combined branch harder to predict
(the paper's Table 3 grep anomaly).
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
char buf[8192];
char pat[16];
int n;
int plen;
int matches;
int lines;

int check(int pos) {
  int k;
  for (k = 1; k < plen; k = k + 1) {
    if (buf[pos + k] != pat[k]) return 0;
  }
  return 1;
}

int main() {
  int i;
  int c;
  int p0;
  p0 = pat[0];
  i = 0;
  while (i < n) {
    c = buf[i];
    if (c == p0) {
      if (check(i)) matches = matches + 1;
    }
    if (c == '\\n') lines = lines + 1;
    if (c == 0) i = n;
    i = i + 1;
  }
  return matches * 10000 + lines;
}
"""

_WORDS = ["alpha", "beta", "gamma", "delta", "xylophone", "query",
          "scan", "buffer", "needle", "haystack", "loop"]


def _inputs(scale: float):
    rng = DeterministicRandom(1776)
    length = max(128, min(8100, int(2600 * scale)))
    text = bytearray(rng.text(length, _WORDS, newline_every=9))
    pattern = b"needle"
    # Plant a few matches so the inner check loop runs occasionally.
    for _ in range(max(1, length // 400)):
        pos = rng.randint(0, length - len(pattern) - 1)
        text[pos:pos + len(pattern)] = pattern
    return {"buf": list(text), "n": [len(text)],
            "pat": list(pattern), "plen": [len(pattern)]}


GREP = register(Workload(
    name="grep",
    description="multi-exit pattern scan loop",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="Unix grep (paper Figure 6 example loop)",
))
