"""qsort — recursive quicksort.

The partition loop's comparisons are data-dependent coin flips, so the
baseline suffers a high misprediction rate (paper Table 3: 15% for
superblock); if-converting the swap logic removes those branches.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
int data[2048];
int nelem;

int partition(int lo, int hi) {
  int pivot;
  int i;
  int j;
  int tmp;
  pivot = data[hi];
  i = lo - 1;
  for (j = lo; j < hi; j = j + 1) {
    if (data[j] <= pivot) {
      i = i + 1;
      tmp = data[i];
      data[i] = data[j];
      data[j] = tmp;
    }
  }
  tmp = data[i + 1];
  data[i + 1] = data[hi];
  data[hi] = tmp;
  return i + 1;
}

int quicksort(int lo, int hi) {
  int p;
  if (lo >= hi) return 0;
  p = partition(lo, hi);
  quicksort(lo, p - 1);
  quicksort(p + 1, hi);
  return 0;
}

int main() {
  int i;
  int checksum;
  quicksort(0, nelem - 1);
  checksum = 0;
  for (i = 1; i < nelem; i = i + 1) {
    if (data[i - 1] > data[i]) return 0 - 1;
    checksum = (checksum * 31 + data[i]) % 1000003;
  }
  return checksum;
}
"""


def _inputs(scale: float):
    rng = DeterministicRandom(777)
    count = max(32, min(2048, int(400 * scale)))
    values = [rng.randint(0, 9999) for _ in range(count)]
    return {"data": values, "nelem": [count]}


QSORT = register(Workload(
    name="qsort",
    description="recursive quicksort with data-dependent partition",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="Unix qsort utility",
))
