"""li — expression-tree interpreter.

022.li is a Lisp interpreter: pointer-chasing dispatch over node types.
The kernel evaluates a random arithmetic/conditional expression forest
stored in parallel arrays, with recursive dispatch through nested type
tests — small blocks, unpredictable dispatch branches.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

#: node opcodes
_CONST, _VAR, _ADD, _SUB, _MUL, _IF, _LT, _NEG = range(8)

SOURCE = """
int op[4096];
int lhs[4096];
int rhs[4096];
int env[32];
int nroots;
int roots[256];

int eval(int node) {
  int kind;
  int a;
  int b;
  kind = op[node];
  if (kind == 0) return lhs[node];
  if (kind == 1) return env[lhs[node] % 32];
  if (kind == 7) return 0 - eval(lhs[node]);
  a = eval(lhs[node]);
  if (kind == 5) {
    if (a != 0) return eval(rhs[node]);
    return 0;
  }
  b = eval(rhs[node]);
  if (kind == 2) return a + b;
  if (kind == 3) return a - b;
  if (kind == 4) return (a * b) % 65536;
  if (kind == 6) {
    if (a < b) return 1;
    return 0;
  }
  return 0;
}

int main() {
  int i;
  int total;
  total = 0;
  for (i = 0; i < nroots; i = i + 1) {
    total = (total + eval(roots[i])) % 1000003;
  }
  return total;
}
"""


def _build_tree(rng, op, lhs, rhs, depth: int) -> int:
    index = len(op)
    if index >= 4000 or depth == 0:
        if rng.randint(0, 1):
            op.append(_CONST)
            lhs.append(rng.randint(0, 99))
        else:
            op.append(_VAR)
            lhs.append(rng.randint(0, 31))
        rhs.append(0)
        return index
    kind = rng.choice([_ADD, _SUB, _MUL, _IF, _LT, _NEG, _ADD, _LT])
    op.append(kind)
    lhs.append(0)
    rhs.append(0)
    lhs[index] = _build_tree(rng, op, lhs, rhs, depth - 1)
    if kind != _NEG:
        rhs[index] = _build_tree(rng, op, lhs, rhs, depth - 1)
    return index


def _inputs(scale: float):
    rng = DeterministicRandom(1958)
    op: list[int] = []
    lhs: list[int] = []
    rhs: list[int] = []
    nroots = max(4, min(256, int(40 * scale)))
    roots = [_build_tree(rng, op, lhs, rhs, depth=rng.randint(3, 6))
             for _ in range(nroots)]
    env = [rng.randint(0, 999) for _ in range(32)]
    return {"op": op, "lhs": lhs, "rhs": rhs, "env": env,
            "roots": roots, "nroots": [nroots]}


LI = register(Workload(
    name="li",
    description="recursive expression-tree evaluator",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="SPEC-92 022.li",
))
