"""lex — table-driven DFA scanner.

lex-generated scanners run a tight loop of table lookups: classify the
character, index the transition table, test for accepting states.  The
loop mixes dependent loads with biased accept/reject branches.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

#: character classes: 0 letter, 1 digit, 2 space, 3 punct
_N_CLASSES = 4
_N_STATES = 6

SOURCE = """
char buf[8192];
int n;
int cclass[128];
int delta[32];
int accept[8];
int counts[8];

int main() {
  int i;
  int c;
  int state;
  int cls;
  int nxt;
  state = 0;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    cls = cclass[c % 128];
    nxt = delta[state * 4 + cls];
    if (nxt != state) {
      if (accept[state] != 0) {
        counts[accept[state]] = counts[accept[state]] + 1;
      }
    }
    state = nxt;
  }
  return counts[1] * 10000 + counts[2] * 100 + counts[3];
}
"""


def _tables():
    # States: 0 start, 1 in-identifier, 2 in-number, 3 in-space,
    # 4 in-punct, 5 error-ish (unused sink).
    delta = [0] * (8 * _N_CLASSES)

    def set_row(state, letter, digit, space, punct):
        delta[state * 4 + 0] = letter
        delta[state * 4 + 1] = digit
        delta[state * 4 + 2] = space
        delta[state * 4 + 3] = punct

    set_row(0, 1, 2, 3, 4)
    set_row(1, 1, 1, 3, 4)   # identifiers may contain digits
    set_row(2, 1, 2, 3, 4)
    set_row(3, 1, 2, 3, 4)
    set_row(4, 1, 2, 3, 4)
    accept = [0, 1, 2, 0, 3, 0, 0, 0]  # ident, number, punct tokens
    cclass = []
    for code in range(128):
        ch = chr(code)
        if ch.isalpha() or ch == "_":
            cclass.append(0)
        elif ch.isdigit():
            cclass.append(1)
        elif ch in " \t\n\r":
            cclass.append(2)
        else:
            cclass.append(3)
    return delta[:32], accept, cclass


_PIECES = ["ident", "x1", "42", "count", "+", ";", "(", ")", "1995",
           "while", "parser", "7", "token"]


def _inputs(scale: float):
    rng = DeterministicRandom(5150)
    length = max(128, min(8100, int(2400 * scale)))
    text = rng.text(length, _PIECES, newline_every=10)
    delta, accept, cclass = _tables()
    return {"buf": list(text), "n": [len(text)], "cclass": cclass,
            "delta": delta, "accept": accept}


LEX = register(Workload(
    name="lex",
    description="table-driven DFA tokenizer",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="Unix lex",
))
