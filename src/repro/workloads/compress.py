"""compress — dictionary/RLE byte compressor.

A hash-table pair compressor in the spirit of 026.compress: per-byte
hashing, table probes with hit/miss branches, and occasional run-length
escapes.  The table probes generate the data-cache traffic that makes
compress the benchmark hit hardest by real caches in the paper's
Figure 11.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
char buf[8192];
char out[8192];
int htab[1024];
int hval[1024];
int n;

int main() {
  int i;
  int outpos;
  int prev;
  int c;
  int pair;
  int h;
  int run;
  outpos = 0;
  prev = 0 - 1;
  run = 0;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    if (c == prev) {
      run = run + 1;
      if (run == 255) {
        out[outpos] = 27;
        out[outpos + 1] = run;
        outpos = outpos + 2;
        run = 0;
      }
    } else {
      if (run > 3) {
        out[outpos] = 27;
        out[outpos + 1] = run;
        outpos = outpos + 2;
      } else {
        while (run > 0) {
          out[outpos] = prev;
          outpos = outpos + 1;
          run = run - 1;
        }
      }
      run = 0;
      pair = prev * 256 + c;
      h = (pair * 5 + 17) % 1024;
      if (h < 0) h = h + 1024;
      if (htab[h] == pair) {
        out[outpos] = 128 + hval[h] % 96;
        outpos = outpos + 1;
      } else {
        htab[h] = pair;
        hval[h] = hval[h] + 1;
        out[outpos] = c;
        outpos = outpos + 1;
      }
      prev = c;
    }
  }
  return outpos * 7 + out[outpos / 2];
}
"""

_WORDS = ["aaaa", "bbbb", "abab", "data", "compressing",
          "runs", "of", "bytes", "zzzzzzzz", "tables"]


def _inputs(scale: float):
    rng = DeterministicRandom(2626)
    length = max(128, min(8100, int(2400 * scale)))
    text = bytearray(rng.text(length, _WORDS, newline_every=12))
    # Insert some runs so the RLE paths execute.
    for _ in range(max(1, length // 300)):
        pos = rng.randint(0, length - 12)
        text[pos:pos + 10] = bytes([text[pos]]) * 10
    return {"buf": list(text), "n": [len(text)]}


COMPRESS = register(Workload(
    name="compress",
    description="hash-table pair compressor with RLE escapes",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="SPEC-92 026.compress",
))
