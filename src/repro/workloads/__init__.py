"""Benchmark workloads: MiniC kernels standing in for the paper's
SPEC-92 and Unix-utility benchmarks (see DESIGN.md for substitutions)."""

from repro.workloads.base import (DeterministicRandom, Workload,
                                  all_workloads, get_workload, register,
                                  workload_names)

__all__ = [
    "DeterministicRandom", "Workload", "all_workloads", "get_workload",
    "register", "workload_names",
]
