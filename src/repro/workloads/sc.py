"""sc — spreadsheet recalculation.

072.sc re-evaluates a grid of cells; the kernel walks a cell table
whose entries are constants, sums over a neighbor window, or
conditionals, and iterates the recalculation until values settle.
The paper notes sc as the one benchmark where conditional-move code
lost to superblock due to lengthened dependence chains.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
int kind[1024];
int parm[1024];
int value[1024];
int rows;
int cols;
int passes;

int main() {
  int p;
  int r;
  int c;
  int idx;
  int k;
  int acc;
  int left;
  int up;
  int total;
  for (p = 0; p < passes; p = p + 1) {
    for (r = 0; r < rows; r = r + 1) {
      for (c = 0; c < cols; c = c + 1) {
        idx = r * cols + c;
        k = kind[idx];
        if (k == 0) {
          value[idx] = parm[idx];
        } else if (k == 1) {
          left = 0;
          up = 0;
          if (c > 0) left = value[idx - 1];
          if (r > 0) up = value[idx - cols];
          value[idx] = (left + up + parm[idx]) % 100000;
        } else {
          left = 0;
          if (c > 0) left = value[idx - 1];
          if (left > parm[idx]) value[idx] = left - parm[idx];
          else value[idx] = parm[idx] - left;
        }
      }
    }
  }
  total = 0;
  for (idx = 0; idx < rows * cols; idx = idx + 1) {
    total = (total + value[idx]) % 1000003;
  }
  return total;
}
"""


def _inputs(scale: float):
    rng = DeterministicRandom(6001)
    rows = max(4, min(32, int(12 * scale)))
    cols = max(4, min(32, int(14 * scale)))
    cells = rows * cols
    kind = [rng.choice([0, 1, 1, 2]) for _ in range(cells)]
    parm = [rng.randint(0, 500) for _ in range(cells)]
    return {"kind": kind, "parm": parm, "rows": [rows], "cols": [cols],
            "passes": [4]}


SC = register(Workload(
    name="sc",
    description="spreadsheet grid recalculation with cell dispatch",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="SPEC-92 072.sc",
))
