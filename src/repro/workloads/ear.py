"""ear — cochlear-model filter cascade (floating point).

056.ear runs cascades of second-order filters followed by rectification
and gain control.  The kernel is a biquad filter bank over an input
signal, with the half-wave rectification conditional in the inner loop
— FP-heavy with one biased branch per sample per channel.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
float signal[2048];
float state1[16];
float state2[16];
float coeff_a[16];
float coeff_b[16];
float energy[16];
int nsamples;
int nchan;

int main() {
  int s;
  int ch;
  float x;
  float y;
  float rectified;
  float agc;
  float total;
  for (s = 0; s < nsamples; s = s + 1) {
    x = signal[s];
    for (ch = 0; ch < nchan; ch = ch + 1) {
      y = coeff_a[ch] * x - coeff_b[ch] * state1[ch]
        - 0.5 * state2[ch];
      state2[ch] = state1[ch];
      state1[ch] = y;
      rectified = y;
      if (rectified < 0.0) rectified = 0.0;
      agc = energy[ch];
      if (agc > 100.0) rectified = rectified / 2.0;
      energy[ch] = agc * 0.99 + rectified;
      x = y;
    }
  }
  total = 0.0;
  for (ch = 0; ch < nchan; ch = ch + 1) {
    total = total + energy[ch];
  }
  return total * 100.0;
}
"""


def _inputs(scale: float):
    rng = DeterministicRandom(56)
    nchan = 8
    nsamples = max(16, min(2000, int(320 * scale)))
    def fval(lo, hi):
        return lo + (hi - lo) * (rng.randint(0, 10_000) / 10_000.0)
    return {
        "signal": [fval(-1.0, 1.0) for _ in range(nsamples)],
        "coeff_a": [fval(0.4, 0.9) for _ in range(nchan)],
        "coeff_b": [fval(0.1, 0.5) for _ in range(nchan)],
        "nsamples": [nsamples], "nchan": [nchan],
    }


EAR = register(Workload(
    name="ear",
    description="biquad filter cascade with rectification",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="SPEC-92 056.ear",
    category="float",
))
