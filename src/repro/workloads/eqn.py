"""eqn — equation-formatter tokenizer.

eqn's front end classifies characters and assembles tokens; the kernel
is a scanner whose per-character classification is a cascade of range
tests.  The paper's Figure 11 discussion singles out eqn: conditional
move's larger code footprint raised its instruction-cache miss rate.
"""

from repro.workloads.base import DeterministicRandom, Workload, register

SOURCE = """
char buf[8192];
int n;
int words;
int numbers;
int operators;
int braces;
int spaces;

int main() {
  int i;
  int c;
  int state;
  state = 0;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    if (c >= 'a' && c <= 'z') {
      if (state != 1) { words = words + 1; state = 1; }
    } else if (c >= 'A' && c <= 'Z') {
      if (state != 1) { words = words + 1; state = 1; }
    } else if (c >= '0' && c <= '9') {
      if (state != 2) { numbers = numbers + 1; state = 2; }
    } else if (c == '{' || c == '}') {
      braces = braces + 1;
      state = 0;
    } else if (c == '+' || c == '-' || c == '^' || c == '/') {
      operators = operators + 1;
      state = 0;
    } else {
      spaces = spaces + 1;
      state = 0;
    }
  }
  return words * 100000 + numbers * 1000 + operators * 100
       + braces * 10 + spaces % 10;
}
"""

_PIECES = ["x", "alpha", "beta", "2", "{", "}", "+", "-", "^", "/",
           "sum", "12", "over", "sqrt", "pi", "375", "theta"]


def _inputs(scale: float):
    rng = DeterministicRandom(31415)
    length = max(128, min(8100, int(2600 * scale)))
    text = rng.text(length, _PIECES, newline_every=11)
    return {"buf": list(text), "n": [len(text)]}


EQN = register(Workload(
    name="eqn",
    description="character-class cascade tokenizer",
    source=SOURCE,
    build_inputs=_inputs,
    stands_for="Unix eqn",
))
