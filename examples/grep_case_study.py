#!/usr/bin/env python3
"""The paper's Figure 6 case study: the grep scan loop.

grep's scan loop is dominated by rarely-taken exit branches; under a
single branch slot the baseline is branch-bound.  The example compiles
grep for the 8-issue, 1-branch machine and shows how each model handles
the branch bottleneck (OR-type defines / OR-trees / branch combining).

Run:  python examples/grep_case_study.py
"""

from repro.analysis.profile import Profile
from repro.ir import Opcode
from repro.ir.opcodes import OpCategory
from repro.machine.descriptor import fig8_machine, scalar_machine
from repro.toolchain import (Model, compile_for_model, frontend,
                             run_compiled)
from repro.workloads import get_workload


def static_mix(program) -> dict[str, int]:
    mix = {"branches": 0, "pred_defines": 0, "cmov_like": 0,
           "logic_or_and": 0, "total": 0}
    for fn in program.functions.values():
        for block in fn.blocks:
            for inst in block.instructions:
                mix["total"] += 1
                if inst.cat is OpCategory.BRANCH \
                        or (inst.op is Opcode.JUMP
                            and inst.pred is not None):
                    mix["branches"] += 1
                elif inst.cat is OpCategory.PREDDEF:
                    mix["pred_defines"] += 1
                elif inst.cat in (OpCategory.CMOV, OpCategory.SELECT):
                    mix["cmov_like"] += 1
                elif inst.op in (Opcode.AND, Opcode.OR, Opcode.AND_NOT,
                                 Opcode.OR_NOT):
                    mix["logic_or_and"] += 1
    return mix


def main() -> None:
    grep = get_workload("grep")
    inputs = grep.inputs(0.6)
    base = frontend(grep.source)
    profile = Profile.collect(base, inputs=inputs)
    machine = fig8_machine()

    scalar_cycles = None
    print(f"{'model':<20s}{'cycles':>8s}{'speedup':>9s}{'BR':>8s}"
          f"{'MP':>6s}{'preddef':>9s}{'cmov':>6s}{'logic':>7s}")
    for model in Model:
        compiled = compile_for_model(base, model, profile, machine)
        result = run_compiled(compiled, inputs=inputs)
        if scalar_cycles is None:
            scalar = compile_for_model(base, Model.SUPERBLOCK, profile,
                                       scalar_machine())
            scalar_cycles = run_compiled(scalar, inputs=inputs).cycles
        stats = result.stats
        mix = static_mix(compiled.program)
        print(f"{model.value:<20s}{stats.cycles:>8d}"
              f"{scalar_cycles / stats.cycles:>9.2f}"
              f"{stats.branches:>8d}{stats.mispredictions:>6d}"
              f"{mix['pred_defines']:>9d}{mix['cmov_like']:>6d}"
              f"{mix['logic_or_and']:>7d}")
    print("\nReading the row differences against the paper's Figure 6:")
    print(" * Full Predication replaces the scan exits with predicate")
    print("   defines (the pred_defines column) that issue in parallel.")
    print(" * Conditional Move re-expresses the same conditions through")
    print("   cmovs plus and/or logic (the cmov/logic columns), whose")
    print("   dependence chains the OR-tree optimization flattens.")


if __name__ == "__main__":
    main()
