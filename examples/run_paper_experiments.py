#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Produces the text renderings of Figures 8-11 and Tables 2-3 (Table 1 is
semantic and certified by the test suite), after first checking that all
three processor models compute identical program results on every
benchmark.

Run:  python examples/run_paper_experiments.py [scale]

``scale`` (default 1.0) multiplies workload input sizes; 0.5 runs in
about a minute, 1.0 in a few minutes.  Output is also written to
RESULTS.txt.
"""

import sys
import time

from repro.experiments import ExperimentSuite, render_all
from repro.machine.descriptor import fig8_machine


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    started = time.time()
    suite = ExperimentSuite(scale=scale)

    print(f"checking model agreement on {len(suite.workloads)} "
          f"benchmarks (scale={scale}) ...")
    for workload in suite.workloads:
        suite.check_model_agreement(workload.name, fig8_machine())
        print(f"  {workload.name}: superblock == cmov == full "
              f"predication")

    text = render_all(suite)
    print()
    print(text)
    with open("RESULTS.txt", "w") as handle:
        handle.write(text + "\n")
    print(f"\nwrote RESULTS.txt ({time.time() - started:.0f}s total)")


if __name__ == "__main__":
    main()
