#!/usr/bin/env python3
"""Quickstart: compile one kernel under all three predication models.

Compiles the paper's Figure 1 code shape (a nested if with a
short-circuit condition) from MiniC source, shows the code each
architectural model runs, and simulates all three on the paper's 8-issue
1-branch machine.

Run:  python examples/quickstart.py
"""

from repro.analysis.profile import Profile
from repro.ir import format_function
from repro.machine.descriptor import fig8_machine, scalar_machine
from repro.toolchain import (Model, compile_for_model, frontend,
                             run_compiled)

SOURCE = """
int a[512];
int b[512];
int c[512];
int n;
int i_total;
int j_total;
int k_total;

int main() {
  int idx;
  int j; int k; int i;
  j = 0; k = 0; i = 0;
  for (idx = 0; idx < n; idx = idx + 1) {
    // The paper's Figure 1 kernel:
    if (a[idx] == 0 || b[idx] == 0) j = j + 1;
    else if (c[idx] != 0) k = k + 1;
    else k = k - 1;
    i = i + 1;
  }
  return j * 1000000 + k * 1000 + i;
}
"""


def make_inputs(n: int = 500) -> dict:
    # A deterministic mix so every path of the conditional executes.
    a = [(7 * i) % 3 for i in range(n)]
    b = [(5 * i) % 4 for i in range(n)]
    c = [(3 * i) % 2 for i in range(n)]
    return {"a": a, "b": b, "c": c, "n": [n]}


def main() -> None:
    inputs = make_inputs()
    base = frontend(SOURCE)
    profile = Profile.collect(base, inputs=inputs)
    machine = fig8_machine()

    print("=" * 72)
    print("Compiling the Figure 1 kernel for each predication model")
    print("=" * 72)

    baseline = None
    for model in Model:
        compiled = compile_for_model(base, model, profile, machine)
        result = run_compiled(compiled, inputs=inputs)
        if model is Model.SUPERBLOCK:
            scalar = compile_for_model(base, model, profile,
                                       scalar_machine())
            baseline = run_compiled(scalar, inputs=inputs).cycles
        stats = result.stats
        print(f"\n--- {model.value} ---")
        print(f"result            : {result.return_value}")
        print(f"cycles (8-issue)  : {stats.cycles}")
        print(f"dynamic instrs    : {stats.dynamic_instructions} "
              f"({stats.suppressed_instructions} nullified)")
        print(f"branches          : {stats.branches} "
              f"({stats.mispredictions} mispredicted)")
        assert baseline is not None
        print(f"speedup vs 1-issue: {baseline / stats.cycles:.2f}")
        if model is Model.FULLPRED:
            print("\nfully predicated main():")
            print(format_function(compiled.program.functions["main"]))


if __name__ == "__main__":
    main()
