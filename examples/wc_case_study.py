#!/usr/bin/env python3
"""The paper's Figure 5 case study: the wc loop.

Compiles the wc benchmark for a 4-issue, 1-branch processor (the
machine of the paper's example) under all three models, prints the
scheduled hot loop with issue-cycle annotations, and reports the
branch/instruction statistics the paper discusses.

Run:  python examples/wc_case_study.py
"""

from repro.analysis.profile import Profile
from repro.ir import format_block
from repro.machine.descriptor import fig10_machine, scalar_machine
from repro.toolchain import (Model, compile_for_model, frontend,
                             run_compiled)
from repro.workloads import get_workload


def hottest_block(compiled, execution):
    """The block containing the most-executed instruction."""
    exec_counts: dict[int, int] = {}
    assert execution.trace is not None
    for event in execution.trace:
        exec_counts[event.inst.uid] = \
            exec_counts.get(event.inst.uid, 0) + 1
    best_block, best = None, -1
    for fn in compiled.program.functions.values():
        for block in fn.blocks:
            score = sum(exec_counts.get(i.uid, 0)
                        for i in block.instructions)
            if score > best:
                best_block, best = block, score
    return best_block


def main() -> None:
    wc = get_workload("wc")
    inputs = wc.inputs(0.5)
    base = frontend(wc.source)
    profile = Profile.collect(base, inputs=inputs)
    machine = fig10_machine()

    scalar_cycles = None
    for model in Model:
        compiled = compile_for_model(base, model, profile, machine)
        result = run_compiled(compiled, inputs=inputs)
        if scalar_cycles is None:
            scalar = compile_for_model(base, Model.SUPERBLOCK, profile,
                                       scalar_machine())
            scalar_cycles = run_compiled(scalar, inputs=inputs).cycles
        stats = result.stats
        print("=" * 72)
        print(f"{model.value} — wc on {machine.name}")
        print("=" * 72)
        print(f"cycles={stats.cycles}  "
              f"speedup={scalar_cycles / stats.cycles:.2f}  "
              f"instrs={stats.executed_instructions}  "
              f"branches={stats.branches}  "
              f"mispredicts={stats.mispredictions}")
        block = hottest_block(compiled, result.execution)
        assert block is not None
        print(f"\nhot loop ({len(block.instructions)} instructions, "
              f"issue cycles on the right):")
        print(format_block(block, cycles=compiled.schedule.cycles))
        print()


if __name__ == "__main__":
    main()
