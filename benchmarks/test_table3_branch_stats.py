"""Table 3: dynamic branch counts, mispredictions, misprediction rates.

Paper shape: both predicated models remove a large portion of the
branches; absolute mispredictions usually drop; the misprediction *rate*
may rise (branch combining concentrates hard-to-predict outcomes onto
one branch — the paper's grep anomaly).
"""

from repro.experiments.render import render_table3
from repro.toolchain import Model


def test_table3_branch_statistics(benchmark, suite):
    stats = benchmark.pedantic(suite.branch_stats, rounds=1, iterations=1)
    print()
    print(render_table3(stats))

    total_br = {model: sum(row[model][0] for row in stats.values())
                for model in Model}
    total_mp = {model: sum(row[model][1] for row in stats.values())
                for model in Model}
    benchmark.extra_info["branches_superblock"] = \
        total_br[Model.SUPERBLOCK]
    benchmark.extra_info["branches_fullpred"] = total_br[Model.FULLPRED]

    # Predication removes a substantial share of the dynamic branches
    # overall, with dramatic per-benchmark reductions (wc/lex/sc-class).
    assert total_br[Model.FULLPRED] < total_br[Model.SUPERBLOCK] * 0.85
    big_cuts = sum(1 for row in stats.values()
                   if row[Model.FULLPRED][0]
                   < row[Model.SUPERBLOCK][0] * 0.5)
    assert big_cuts >= 3
    # Fewer branches -> fewer total mispredictions.
    assert total_mp[Model.FULLPRED] < total_mp[Model.SUPERBLOCK]
    # The predicated models have nearly identical branch behaviour
    # (paper: "very close to the same number of branches").
    assert abs(total_br[Model.FULLPRED] - total_br[Model.CMOV]) \
        < total_br[Model.CMOV] * 0.45
