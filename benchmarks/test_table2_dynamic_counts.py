"""Table 2: dynamic instruction count comparison.

Paper shape: conditional-move code executes far more instructions than
superblock (paper mean +46%; ratios up to 2.1 on wc/lex), while full
predication stays close to superblock (paper mean +7%, some benchmarks
below 1.0).
"""

from repro.experiments.render import render_table2
from repro.toolchain import Model


def test_table2_dynamic_instruction_counts(benchmark, suite):
    counts = benchmark.pedantic(suite.dynamic_counts, rounds=1,
                                iterations=1)
    print()
    print(render_table2(counts))

    ratios_cmov = [row[Model.CMOV] / row[Model.SUPERBLOCK]
                   for row in counts.values()]
    ratios_full = [row[Model.FULLPRED] / row[Model.SUPERBLOCK]
                   for row in counts.values()]
    mean_cmov = sum(ratios_cmov) / len(ratios_cmov)
    mean_full = sum(ratios_full) / len(ratios_full)
    benchmark.extra_info["mean_cmov_ratio"] = round(mean_cmov, 3)
    benchmark.extra_info["mean_fullpred_ratio"] = round(mean_full, 3)

    # cmov expands dynamic counts much more than full predication.
    assert mean_cmov > mean_full
    assert mean_cmov > 1.15
    # Full predication stays within a modest factor of superblock.
    assert mean_full < 1.4
    # At least one benchmark shows the >1.9x cmov blowup the paper
    # reports for wc/lex/cccp-class code.
    assert max(ratios_cmov) > 1.9
