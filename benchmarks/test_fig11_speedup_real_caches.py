"""Figure 11: speedups on an 8-issue, 1-branch processor with real
(direct-mapped, scaled) instruction and data caches.

Paper shape: all three models lose speedup versus perfect caches;
compress suffers most (speculative loads from predicate promotion raise
data-cache traffic); eqn's conditional-move code suffers extra
instruction-cache misses from its code expansion.  Cache sizes are
scaled to the kernel workloads (see EXPERIMENTS.md).
"""

from repro.experiments.render import render_speedup_figure
from repro.experiments.runner import mean_speedups
from repro.toolchain import Model


def test_fig11_speedups(benchmark, suite):
    table11 = benchmark.pedantic(suite.figure11, rounds=1, iterations=1)
    table8 = suite.figure8()
    means11 = mean_speedups(table11)
    means8 = mean_speedups(table8)
    print()
    print(render_speedup_figure(
        table11,
        "Figure 11: speedup, 8-issue 1-branch, scaled real caches"))
    benchmark.extra_info["mean_fullpred"] = round(
        means11[Model.FULLPRED], 3)

    # Real caches compress every model's speedup.
    for model in Model:
        assert means11[model] < means8[model]
    # Full predication still leads on the mean.
    assert means11[Model.FULLPRED] >= means11[Model.SUPERBLOCK]
    # eqn: cmov's larger footprint costs it more than full predication
    # under a real instruction cache (the paper's eqn observation).
    eqn = table11.get("eqn")
    if eqn is not None:
        assert eqn[Model.CMOV] <= eqn[Model.FULLPRED]
