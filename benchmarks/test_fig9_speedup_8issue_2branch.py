"""Figure 9: speedups on an 8-issue, 2-branch processor, perfect caches.

Paper shape: doubling branch issue bandwidth helps the baseline most —
superblock closes most of conditional move's advantage (paper: cmov only
+3% over superblock at 2-branch vs +33% at 1-branch), while full
predication stays clearly ahead (+35%).
"""

from repro.experiments.render import render_speedup_figure
from repro.experiments.runner import mean_speedups
from repro.toolchain import Model


def test_fig9_speedups(benchmark, suite):
    table9 = benchmark.pedantic(suite.figure9, rounds=1, iterations=1)
    table8 = suite.figure8()
    means9 = mean_speedups(table9)
    means8 = mean_speedups(table8)
    print()
    print(render_speedup_figure(
        table9, "Figure 9: speedup, 8-issue 2-branch, perfect caches"))
    benchmark.extra_info["mean_superblock"] = round(
        means9[Model.SUPERBLOCK], 3)
    benchmark.extra_info["mean_fullpred"] = round(
        means9[Model.FULLPRED], 3)

    # The second branch slot helps superblock more than the predicated
    # models (their branches are already gone).
    sb_gain = means9[Model.SUPERBLOCK] / means8[Model.SUPERBLOCK]
    full_gain = means9[Model.FULLPRED] / means8[Model.FULLPRED]
    cmov_gain = means9[Model.CMOV] / means8[Model.CMOV]
    assert sb_gain > full_gain
    assert sb_gain > cmov_gain
    # cmov's advantage over superblock shrinks relative to Figure 8.
    edge8 = means8[Model.CMOV] / means8[Model.SUPERBLOCK]
    edge9 = means9[Model.CMOV] / means9[Model.SUPERBLOCK]
    assert edge9 < edge8
