"""Table 1: the predicate-define truth table.

Not a performance experiment — the bench certifies the semantic core
(every (type, p_in, cmp) entry) and measures its evaluation cost, since
the emulator executes it for every predicate define.
"""

from repro.ir.instruction import PType
from repro.machine.predicates import UNCHANGED, pred_update

_EXPECTED = {
    (0, 0): {PType.U: 0, PType.U_BAR: 0, PType.OR: None,
             PType.OR_BAR: None, PType.AND: None, PType.AND_BAR: None},
    (0, 1): {PType.U: 0, PType.U_BAR: 0, PType.OR: None,
             PType.OR_BAR: None, PType.AND: None, PType.AND_BAR: None},
    (1, 0): {PType.U: 0, PType.U_BAR: 1, PType.OR: None,
             PType.OR_BAR: 1, PType.AND: 0, PType.AND_BAR: None},
    (1, 1): {PType.U: 1, PType.U_BAR: 0, PType.OR: 1,
             PType.OR_BAR: None, PType.AND: None, PType.AND_BAR: 0},
}


def _evaluate_whole_table():
    results = {}
    for (p_in, cmp_result), row in _EXPECTED.items():
        for ptype in PType:
            results[(p_in, cmp_result, ptype)] = pred_update(
                ptype, p_in, cmp_result)
    return results


def test_table1_truth_table(benchmark):
    results = benchmark(_evaluate_whole_table)
    for (p_in, cmp_result, ptype), value in results.items():
        expected = _EXPECTED[(p_in, cmp_result)][ptype]
        assert value == expected, (p_in, cmp_result, ptype)
    assert len(results) == 24  # 4 input combinations x 6 types
