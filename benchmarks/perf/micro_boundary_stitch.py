"""Chunk-boundary state stitching overhead on deliberately tiny chunks.
Run with ``PYTHONPATH=src python benchmarks/perf/micro_boundary_stitch.py``."""

from repro.fastpath import micro

if __name__ == "__main__":
    print(micro.render([micro.bench_boundary_stitch()]))
