"""Simulator issue loop: object trace vs columnar stream.
Run with ``PYTHONPATH=src python benchmarks/perf/micro_issue_loop.py``."""

from repro.fastpath import micro

if __name__ == "__main__":
    print(micro.render([micro.bench_issue_loop()]))
