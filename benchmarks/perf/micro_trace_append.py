"""Trace recording: ``list[TraceEvent]`` append vs columnar append.
Run with ``PYTHONPATH=src python benchmarks/perf/micro_trace_append.py``."""

from repro.fastpath import micro

if __name__ == "__main__":
    print(micro.render([micro.bench_trace_append()]))
