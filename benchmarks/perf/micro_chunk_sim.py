"""Chunked cycle simulation: stream scalar loop vs vector backend.
Run with ``PYTHONPATH=src python benchmarks/perf/micro_chunk_sim.py``."""

from repro.fastpath import micro

if __name__ == "__main__":
    print(micro.render([micro.bench_chunk_simulate()]))
