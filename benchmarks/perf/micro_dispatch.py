"""Interpreter dispatch: legacy object-graph loop vs pre-decoded
micro-ops.  Run with ``PYTHONPATH=src python benchmarks/perf/micro_dispatch.py``."""

from repro.fastpath import micro

if __name__ == "__main__":
    print(micro.render([micro.bench_dispatch()]))
