"""Vector-backend specialization cost amortized over trace length.
Run with ``PYTHONPATH=src python benchmarks/perf/micro_specialize.py``."""

from repro.fastpath import micro

if __name__ == "__main__":
    print(micro.render([micro.bench_specialize()]))
