"""Figure 5: the wc loop case study (4-issue, 1 branch per cycle).

The paper compiles wc's hot loop for a 4-issue processor: hyperblock
formation removes all but three branches; full predication schedules the
loop in 8 cycles with 18 instructions, partial predication needs 10
cycles with 31 instructions.  We reproduce the relationships: both
predicated models eliminate the same branches; partial predication
executes substantially more instructions and more cycles per iteration
than full predication; full predication beats superblock.
"""

from repro.machine.descriptor import fig10_machine, scalar_machine
from repro.toolchain import Model


def _wc_runs(suite):
    machine = fig10_machine()  # the example's 4-issue, 1-branch machine
    return {model: suite.run("wc", model, machine) for model in Model}


def test_fig5_wc_loop_shape(benchmark, suite):
    runs = benchmark.pedantic(_wc_runs, args=(suite,), rounds=1,
                              iterations=1)
    base = suite.run("wc", Model.SUPERBLOCK, scalar_machine()).cycles
    for model, run in runs.items():
        benchmark.extra_info[f"speedup_{model.name.lower()}"] = round(
            base / run.cycles, 3)
        benchmark.extra_info[f"instructions_{model.name.lower()}"] = \
            run.stats.executed_instructions

    sb, cm, fp = (runs[Model.SUPERBLOCK], runs[Model.CMOV],
                  runs[Model.FULLPRED])
    # Both predicated models eliminate most of wc's branches.
    assert fp.stats.branches < sb.stats.branches * 0.5
    assert cm.stats.branches < sb.stats.branches * 0.5
    # Partial predication pays in instruction count (paper: 31 vs 18).
    assert cm.stats.executed_instructions > \
        fp.stats.executed_instructions * 1.3
    # ... and in cycles (paper: 10 vs 8 for the example loop).
    assert cm.cycles > fp.cycles
    # Full predication beats superblock on wc (paper: 5.1 vs 2.3).
    assert fp.cycles < sb.cycles
    # Nearly all mispredictions disappear with predication (paper:
    # "virtually all the mispredictions are eliminated").
    assert fp.stats.mispredictions < sb.stats.mispredictions * 0.2
