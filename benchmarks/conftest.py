"""Shared experiment suite for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of Mahlke et al. (ISCA
1995).  The suite memoizes compilations and emulations, so the first
benchmark that needs a configuration pays for it and the rest reuse it.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentSuite

#: workload scale for benchmarking: large enough for stable shapes,
#: small enough that the full suite regenerates in minutes.
BENCH_SCALE = 0.7


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite(scale=BENCH_SCALE)
