"""Figure 10: speedups on a 4-issue, 1-branch processor, perfect caches.

Paper shape: at 4-issue the conditional-move model's extra instructions
saturate the narrower machine — cmov loses to superblock on the majority
of benchmarks — while full predication's low overhead keeps it clearly
ahead (paper: +33% mean over superblock).
"""

from repro.experiments.render import render_speedup_figure
from repro.experiments.runner import mean_speedups
from repro.toolchain import Model


def test_fig10_speedups(benchmark, suite):
    table10 = benchmark.pedantic(suite.figure10, rounds=1, iterations=1)
    table8 = suite.figure8()
    means10 = mean_speedups(table10)
    means8 = mean_speedups(table8)
    print()
    print(render_speedup_figure(
        table10, "Figure 10: speedup, 4-issue 1-branch, perfect caches"))
    benchmark.extra_info["mean_cmov"] = round(means10[Model.CMOV], 3)
    benchmark.extra_info["mean_fullpred"] = round(
        means10[Model.FULLPRED], 3)

    # Full predication still beats superblock on the mean at 4-issue.
    assert means10[Model.FULLPRED] > means10[Model.SUPERBLOCK]
    # The narrow machine punishes cmov's code expansion: its edge over
    # superblock shrinks (or inverts) relative to the 8-issue machine.
    edge8 = means8[Model.CMOV] / means8[Model.SUPERBLOCK]
    edge10 = means10[Model.CMOV] / means10[Model.SUPERBLOCK]
    assert edge10 <= edge8 * 1.02
    # More benchmarks lose with cmov at 4-issue than at 8-issue.
    losses10 = sum(1 for row in table10.values()
                   if row[Model.CMOV] < row[Model.SUPERBLOCK])
    losses8 = sum(1 for row in table8.values()
                  if row[Model.CMOV] < row[Model.SUPERBLOCK])
    assert losses10 >= losses8
