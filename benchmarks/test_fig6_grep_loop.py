"""Figure 6: the grep loop case study (8-issue, 1 branch per cycle).

The paper's grep loop is branch-bound under a single branch slot; full
predication combines the rare exits via simultaneously-issuing OR-type
defines (14 -> 6 cycles), and partial predication recovers part of the
benefit with the OR-tree optimization (14 -> 10 cycles).
"""

from repro.machine.descriptor import fig8_machine, scalar_machine
from repro.toolchain import Model


def _grep_runs(suite):
    machine = fig8_machine()
    return {model: suite.run("grep", model, machine) for model in Model}


def test_fig6_grep_loop_shape(benchmark, suite):
    runs = benchmark.pedantic(_grep_runs, args=(suite,), rounds=1,
                              iterations=1)
    base = suite.run("grep", Model.SUPERBLOCK, scalar_machine()).cycles
    for model, run in runs.items():
        benchmark.extra_info[f"speedup_{model.name.lower()}"] = round(
            base / run.cycles, 3)

    sb, cm, fp = (runs[Model.SUPERBLOCK], runs[Model.CMOV],
                  runs[Model.FULLPRED])
    # Full predication relieves the branch bottleneck: best cycle count.
    assert fp.cycles < sb.cycles
    # Partial predication lands between full predication and the
    # baseline in cycle count (paper: 10 between 6 and 14).
    assert fp.cycles <= cm.cycles
    # Predication reduces grep's dynamic branch pressure.
    assert fp.stats.branches <= sb.stats.branches
