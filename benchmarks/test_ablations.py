"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one compiler feature and measures the effect on a
small, sensitive subset of workloads:

* OR-tree height reduction (paper Section 3.2) — partial predication's
  answer to sequential predicate chains;
* predicate promotion (paper Figure 2) — speculation that removes
  conversion cmovs and shortens define->use chains;
* select vs cmov lowering (paper Section 2.2/3.2);
* excepting vs non-excepting basic conversions (paper Figures 3 vs 4);
* hyperblock loop unrolling;
* a branch-misprediction-penalty sweep (the paper's Section 5
  conjecture: larger penalties amplify predication's advantage).
"""

import dataclasses

import pytest

from repro.experiments.runner import ExperimentSuite
from repro.machine.descriptor import BTBConfig, MachineDescription
from repro.partial.conversion import ConversionParams
from repro.regions.unroll import UnrollParams
from repro.toolchain import Model, ToolchainOptions
from repro.workloads import get_workload

_SCALE = 0.5
_SENSITIVE = ["wc", "eqn", "cmp", "qsort"]


def _mini_suite(options: ToolchainOptions | None = None
                ) -> ExperimentSuite:
    workloads = [get_workload(n) for n in _SENSITIVE]
    return ExperimentSuite(workloads=workloads, scale=_SCALE,
                           options=options)


def _total_cycles(suite: ExperimentSuite, model: Model,
                  machine=None) -> int:
    from repro.machine.descriptor import fig8_machine
    machine = machine or fig8_machine()
    return sum(suite.run(w.name, model, machine).cycles
               for w in suite.workloads)


def test_ablation_or_tree(benchmark):
    """Disabling the OR-tree raises partial predication's cycle count."""
    def run():
        on = _mini_suite()
        off = _mini_suite(ToolchainOptions(enable_or_tree=False))
        return (_total_cycles(on, Model.CMOV),
                _total_cycles(off, Model.CMOV))

    with_tree, without_tree = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    benchmark.extra_info["cycles_with"] = with_tree
    benchmark.extra_info["cycles_without"] = without_tree
    assert with_tree <= without_tree * 1.02


def test_ablation_promotion(benchmark):
    """Disabling promotion hurts partial predication (every predicated
    instruction then needs its cmov) and should never help it."""
    def run():
        from repro.machine.descriptor import fig8_machine
        machine = fig8_machine()
        on = _mini_suite()
        off = _mini_suite(ToolchainOptions(enable_promotion=False))
        return (_total_cycles(on, Model.CMOV),
                _total_cycles(off, Model.CMOV),
                on.run("wc", Model.CMOV,
                       machine).stats.executed_instructions,
                off.run("wc", Model.CMOV,
                        machine).stats.executed_instructions)

    with_p, without_p, insts_with, insts_without = benchmark.pedantic(
        run, rounds=1, iterations=1)
    benchmark.extra_info["cycles_with"] = with_p
    benchmark.extra_info["cycles_without"] = without_p
    assert with_p <= without_p * 1.02
    # Promotion reduces the converted instruction count (Figure 2).
    assert insts_with <= insts_without


def test_ablation_select_lowering(benchmark):
    """Select-based lowering must stay correct; with non-excepting
    conversions it performs comparably to cmov-based lowering."""
    def run():
        cmov = _mini_suite()
        select = _mini_suite(ToolchainOptions(
            conversion=ConversionParams(use_select=True)))
        return (_total_cycles(cmov, Model.CMOV),
                _total_cycles(select, Model.CMOV))

    cycles_cmov, cycles_select = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    benchmark.extra_info["cycles_cmov"] = cycles_cmov
    benchmark.extra_info["cycles_select"] = cycles_select
    assert cycles_select <= cycles_cmov * 1.1


def test_ablation_excepting_conversions(benchmark):
    """Without silent instructions, the Figure 4 sequences cost extra
    instructions; select shortens them (paper Section 3.2)."""
    def run():
        silent = _mini_suite()
        excepting = _mini_suite(ToolchainOptions(
            conversion=ConversionParams(non_excepting=False)))
        from repro.machine.descriptor import fig8_machine
        m = fig8_machine()
        return (sum(silent.run(w.name, Model.CMOV,
                               m).stats.executed_instructions
                    for w in silent.workloads),
                sum(excepting.run(w.name, Model.CMOV,
                                  m).stats.executed_instructions
                    for w in excepting.workloads))

    silent_insts, excepting_insts = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)
    benchmark.extra_info["insts_silent"] = silent_insts
    benchmark.extra_info["insts_excepting"] = excepting_insts
    assert excepting_insts >= silent_insts


def test_ablation_unrolling(benchmark):
    """Loop unrolling is a large part of every model's ILP."""
    def run():
        on = _mini_suite()
        off = _mini_suite(ToolchainOptions(unroll=None))
        return (_total_cycles(on, Model.FULLPRED),
                _total_cycles(off, Model.FULLPRED))

    with_u, without_u = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cycles_with"] = with_u
    benchmark.extra_info["cycles_without"] = without_u
    assert with_u < without_u


def test_ablation_mispredict_penalty_sweep(benchmark):
    """Raising the misprediction penalty (2 -> 8 cycles) amplifies full
    predication's advantage over superblock (paper Section 5)."""
    def run():
        suite = _mini_suite()
        results = {}
        for penalty in (2, 8):
            machine = MachineDescription(
                issue_width=8, branch_issue_limit=1,
                btb=BTBConfig(mispredict_penalty=penalty),
                name=f"8-issue,mp{penalty}")
            sb = _total_cycles(suite, Model.SUPERBLOCK, machine)
            fp = _total_cycles(suite, Model.FULLPRED, machine)
            results[penalty] = sb / fp
        return results

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["advantage_p2"] = round(ratios[2], 3)
    benchmark.extra_info["advantage_p8"] = round(ratios[8], 3)
    assert ratios[8] > ratios[2]
