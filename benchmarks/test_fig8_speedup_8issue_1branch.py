"""Figure 8: speedups on an 8-issue, 1-branch processor, perfect caches.

Paper shape: full predication performs best on (nearly) every benchmark
(+63% mean over superblock in the paper); conditional move falls between
superblock and full predication on the mean (+33% in the paper).
"""

from repro.experiments.render import render_speedup_figure
from repro.experiments.runner import mean_speedups
from repro.toolchain import Model


def test_fig8_speedups(benchmark, suite):
    table = benchmark.pedantic(suite.figure8, rounds=1, iterations=1)
    means = mean_speedups(table)
    benchmark.extra_info["mean_superblock"] = round(
        means[Model.SUPERBLOCK], 3)
    benchmark.extra_info["mean_cmov"] = round(means[Model.CMOV], 3)
    benchmark.extra_info["mean_fullpred"] = round(
        means[Model.FULLPRED], 3)
    print()
    print(render_speedup_figure(
        table, "Figure 8: speedup, 8-issue 1-branch, perfect caches"))

    # Shape: full predication has the best mean and beats superblock on
    # a clear majority of benchmarks.
    assert means[Model.FULLPRED] > means[Model.SUPERBLOCK]
    assert means[Model.FULLPRED] > means[Model.CMOV]
    wins = sum(1 for row in table.values()
               if row[Model.FULLPRED] >= row[Model.SUPERBLOCK] * 0.98)
    assert wins >= len(table) * 0.6
    # Conditional move provides gains over superblock on several
    # benchmarks (the paper's "surprisingly large" cmov result).
    cmov_wins = sum(1 for row in table.values()
                    if row[Model.CMOV] > row[Model.SUPERBLOCK] * 1.05)
    assert cmov_wins >= 4
