"""SweepSpec validation, lattice expansion and digest identity."""

import json

import pytest

from repro.robustness.errors import SpecError
from repro.sweep import SweepSpec


def test_defaults_expand_to_issue_width_axis():
    spec = SweepSpec()
    points = spec.expand()
    assert [p.axes_dict()["issue_width"] for p in points] == [1, 2, 4, 8]
    assert [p.index for p in points] == [0, 1, 2, 3]


def test_perfect_cache_collapses_geometry_axes():
    spec = SweepSpec(issue_widths=(8,), caches=("perfect",),
                     icache_bytes=(1024, 2048), dcache_bytes=(2048,))
    assert len(spec.expand()) == 1  # geometry is irrelevant, deduped


def test_real_cache_expands_geometry_axes():
    spec = SweepSpec(issue_widths=(8,), caches=("real",),
                     icache_bytes=(1024, 2048), miss_penalties=(12, 24))
    assert len(spec.expand()) == 4


def test_lattice_dedups_by_machine_digest():
    spec = SweepSpec(issue_widths=(1, 2), caches=("perfect", "real"))
    points = spec.expand()
    digests = [p.machine.digest() for p in points]
    assert len(digests) == len(set(digests))


def test_point_index_is_stable_identity():
    a = SweepSpec(issue_widths=(1, 2, 4), caches=("perfect", "real"))
    b = SweepSpec(issue_widths=(1, 2, 4), caches=("perfect", "real"))
    assert [(p.index, p.machine.digest()) for p in a.expand()] \
        == [(p.index, p.machine.digest()) for p in b.expand()]


def test_sweep_digest_ignores_name_only():
    a = SweepSpec(name="a", issue_widths=(1, 2))
    b = SweepSpec(name="b", issue_widths=(1, 2))
    c = SweepSpec(name="a", issue_widths=(1, 4))
    assert a.sweep_digest() == b.sweep_digest()
    assert a.sweep_digest() != c.sweep_digest()


def test_model_order_is_canonicalized():
    a = SweepSpec(models=("fullpred", "superblock"))
    b = SweepSpec(models=("superblock", "fullpred"))
    assert a.models == b.models == ("superblock", "fullpred")
    assert a.sweep_digest() == b.sweep_digest()


def test_latency_sets_become_machine_overrides():
    spec = SweepSpec(issue_widths=(8,),
                     latency_sets=(("pa7100", ()),
                                   ("slowload", (("load", 4),))))
    points = spec.expand()
    assert len(points) == 2
    by_name = {p.axes_dict()["latencies"]: p.machine for p in points}
    from repro.ir.opcodes import Opcode
    assert by_name["pa7100"].latency(Opcode.LOAD) == 2
    assert by_name["slowload"].latency(Opcode.LOAD) == 4


@pytest.mark.parametrize("bad", [
    {"issue_widths": []},
    {"issue_widths": [0]},
    {"issue_widths": [1, 1]},
    {"models": ["superblock", "vliw"]},
    {"models": []},
    {"caches": ["write-back"]},
    {"workloads": ["nosuch"]},
    {"scale": 0},
    {"latency_sets": ()},
    {"latency_sets": (("t", (("ld", 2),)),)},
    {"btb_penalties": [-1]},
])
def test_invalid_specs_raise_typed_spec_error(bad):
    with pytest.raises(SpecError):
        SweepSpec(**bad)


def test_spec_error_exit_code_is_11():
    assert SpecError.exit_code == 11


def test_grid_size_bound_fails_loudly():
    with pytest.raises(SpecError, match="exceeds"):
        SweepSpec(issue_widths=tuple(range(1, 17)),
                  branch_limits=(1, 2, 3, 4, 5, 6, 7, 8),
                  btb_entries=(64, 128, 256, 512),
                  btb_penalties=tuple(range(10)))


def test_wire_roundtrip(tmp_path):
    spec = SweepSpec(name="rt", workloads=("wc",),
                     models=("superblock", "cmov"), issue_widths=(1, 2),
                     caches=("perfect", "real"),
                     latency_sets=(("slow", (("load", 4),)),))
    again = SweepSpec.from_dict(spec.to_dict())
    assert again == spec
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert SweepSpec.from_file(str(path)) == spec


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(SpecError, match="unknown sweep spec fields"):
        SweepSpec.from_dict({"issue_width": [1]})


def test_from_file_bad_json_is_typed(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{nope")
    with pytest.raises(SpecError, match="invalid JSON"):
        SweepSpec.from_file(str(path))
