"""Rendered sweep reports and point-for-point diffs."""

from repro.sweep import SweepResult, SweepSpec, run_sweep
from repro.sweep.report import diff, render


def _result(**over):
    spec = SweepSpec(**{**dict(name="r", workloads=("wc",),
                               models=("superblock", "cmov"),
                               issue_widths=(1, 2),
                               caches=("perfect",), scale=0.2,
                               max_steps=2_000_000), **over})
    return run_sweep(spec).result


def test_render_names_surfaces_and_pareto():
    text = render(_result().to_dict())
    assert "mean speedup vs 1-issue superblock baseline" in text
    assert "w=1" in text and "w=2" in text
    assert "superblock" in text and "cmov" in text
    assert "pareto frontier" in text
    assert "wc" in text


def test_surfaces_group_by_non_width_axes():
    result = _result(caches=("perfect", "real")).to_dict()
    groups = [s["group"].get("caches") for s in result["surfaces"]]
    assert sorted(groups) == ["perfect", "real"]
    for surface in result["surfaces"]:
        widths = set(surface["mean_speedup"]["superblock"])
        assert widths == {"1", "2"}


def test_pareto_is_a_strictly_improving_staircase():
    result = _result(issue_widths=(1, 2, 4, 8)).to_dict()
    for per_model in result["pareto"].values():
        for front in per_model.values():
            widths = [step["issue_width"] for step in front]
            speedups = [step["speedup"] for step in front]
            assert widths == sorted(widths)
            assert speedups == sorted(speedups)
            assert len(set(speedups)) == len(speedups)


def test_result_roundtrip_preserves_bytes(tmp_path):
    result = _result()
    path = tmp_path / "r.json"
    path.write_text(result.to_json() + "\n")
    again = SweepResult.from_file(str(path))
    assert again.to_json() == result.to_json()


def test_diff_identical_results():
    a = _result()
    text = diff(a.to_dict(), a.to_dict())
    assert "identical" in text


def test_diff_reports_added_removed_and_changed():
    a = _result(issue_widths=(1, 2))
    b = _result(issue_widths=(2, 4))
    text = diff(a.to_dict(), b.to_dict())
    assert "+ added" in text and "- removed" in text
    c = _result(issue_widths=(1, 2), scale=0.3)
    text = diff(a.to_dict(), c.to_dict())
    assert "~" in text and "changed" in text
