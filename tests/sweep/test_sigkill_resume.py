"""SIGKILL a live `repro sweep run` subprocess, then resume it.

The satellite guarantee: a sweep killed with SIGKILL (no atexit, no
signal handler, no flushing) resumes from its fsync'd journal to a
byte-identical SweepResult, recomputing zero completed points.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.engine.recovery.journal import journal_path, replay_journal

SPEC = dict(name="kill", workloads=["wc", "qsort"],
            models=["superblock", "cmov"], issue_widths=[1, 2],
            caches=["perfect", "real"], scale=0.3,
            max_steps=4_000_000)
RUN_ID = "RKILL-TEST"


def _cmd(tmp_path, *extra):
    return [sys.executable, "-m", "repro", "sweep", "run",
            str(tmp_path / "spec.json"), "--cache-dir",
            str(tmp_path / "cache"), "-o", str(tmp_path / "out.json"),
            *extra]


def _env():
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = os.path.join(root, "src")
    return env


def test_sigkill_mid_sweep_resumes_byte_identical(tmp_path):
    (tmp_path / "spec.json").write_text(json.dumps(SPEC))
    jpath = journal_path(tmp_path / "cache" / "runs", RUN_ID)

    proc = subprocess.Popen(_cmd(tmp_path, "--run-id", RUN_ID),
                            env=_env(), stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    # Kill as soon as the journal proves at least one task finished —
    # mid-sweep, not before it starts and (at this scale) not after
    # it ends.
    deadline = time.monotonic() + 120
    killed = False
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break  # finished before we could kill: still a valid resume
        if jpath.exists() and b'"task-finish"' in jpath.read_bytes():
            proc.kill()  # SIGKILL
            proc.wait(timeout=30)
            killed = True
            break
        time.sleep(0.01)
    else:
        proc.kill()
        raise AssertionError("sweep never journaled a task-finish")
    if killed:
        assert proc.returncode == -signal.SIGKILL

    state = replay_journal(jpath)
    done_before = set(state.completed)

    resumed = subprocess.run(
        _cmd(tmp_path, "--resume", RUN_ID), env=_env(),
        capture_output=True, text=True, timeout=300)
    assert resumed.returncode == 0, resumed.stderr

    # Zero recompute: no task completed before the kill was started
    # again after the run-resume record.
    entries = [json.loads(line) for line in
               jpath.read_bytes().splitlines() if line.strip()]
    resume_at = next(i for i, r in enumerate(entries)
                     if r.get("type") == "run-resume")
    restarted = [r["task"] for r in entries[resume_at:]
                 if r.get("type") == "task-start"
                 and r.get("task") in done_before]
    assert restarted == []
    assert replay_journal(jpath).finished

    reference = subprocess.run(
        [sys.executable, "-m", "repro", "sweep", "run",
         str(tmp_path / "spec.json"), "--cache-dir",
         str(tmp_path / "ref"), "-o", str(tmp_path / "ref.json")],
        env=_env(), capture_output=True, text=True, timeout=600)
    assert reference.returncode == 0, reference.stderr
    assert (tmp_path / "out.json").read_bytes() \
        == (tmp_path / "ref.json").read_bytes()
