"""Sweep execution: determinism, schedule-digest sharing, resume."""

import pytest

from repro.engine.recovery.journal import journal_path, replay_journal
from repro.robustness.errors import ReproError
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.runner import point_task_id

SPEC = dict(name="t", workloads=("wc",), models=("superblock", "cmov"),
            issue_widths=(1, 2), caches=("perfect", "real"), scale=0.2,
            max_steps=2_000_000)


def _spec(**over):
    return SweepSpec(**{**SPEC, **over})


def test_serial_and_parallel_results_are_byte_identical(tmp_path):
    serial = run_sweep(_spec(), cache_dir=str(tmp_path / "a"), jobs=1)
    parallel = run_sweep(_spec(), cache_dir=str(tmp_path / "b"), jobs=4)
    assert serial.result.to_json() == parallel.result.to_json()


def test_no_store_serial_matches_store_backed(tmp_path):
    bare = run_sweep(_spec())
    stored = run_sweep(_spec(), cache_dir=str(tmp_path), jobs=2)
    assert bare.result.to_json() == stored.result.to_json()


def test_warm_rerun_is_zero_compute(tmp_path):
    run_sweep(_spec(), cache_dir=str(tmp_path), jobs=1)
    warm = run_sweep(_spec(), cache_dir=str(tmp_path), jobs=1)
    assert warm.points_cached == warm.points_total == 4
    for stage in ("compile", "emulate", "simulate"):
        assert warm.metrics.stages[stage].invocations == 0
    assert warm.metrics.sweep_points_cached == 4


def test_compiles_shared_across_cache_configs(tmp_path):
    outcome = run_sweep(_spec(), cache_dir=str(tmp_path), jobs=1)
    # 2 widths x 2 models compile jobs; perfect vs real caches share a
    # schedule digest so they never compile twice.  (The lattice holds
    # 4 points = 2 widths x 2 cache modes.)
    assert outcome.points_total == 4
    assert outcome.metrics.stages["compile"].invocations == 4


def test_speedups_match_experiment_suite(tmp_path):
    from repro.experiments.runner import ExperimentSuite
    from repro.machine.descriptor import scalar_machine
    from repro.toolchain import Model
    from repro.workloads import get_workload
    outcome = run_sweep(_spec(), cache_dir=str(tmp_path), jobs=1)
    suite = ExperimentSuite(workloads=[get_workload("wc")], scale=0.2,
                            max_steps=2_000_000)
    base = suite.run("wc", Model.SUPERBLOCK, scalar_machine()).cycles
    assert outcome.result.baseline_cycles["wc"] == base
    point = outcome.result.points[0]
    assert point["axes"]["issue_width"] == 1
    machine = _spec().expand()[0].machine
    cycles = suite.run("wc", Model.SUPERBLOCK, machine).cycles
    assert point["workloads"]["wc"]["superblock"]["cycles"] == cycles


def test_journal_records_sweep_tasks(tmp_path):
    outcome = run_sweep(_spec(), cache_dir=str(tmp_path), jobs=1)
    state = replay_journal(journal_path(tmp_path / "runs",
                                        outcome.run_id))
    digest = _spec().sweep_digest()
    for index in range(4):
        assert point_task_id(digest, index) in state.completed
    assert state.finished
    assert state.meta["kind"] == "sweep"
    assert state.meta["tasks_total"] == 5  # 4 points + baseline


def test_crash_then_resume_recomputes_zero_completed_points(
        tmp_path, monkeypatch):
    """A run that dies mid-sweep resumes to byte-identical output with
    zero recompute of the points its journal proved complete."""
    import repro.sweep.runner as runner_mod
    real = runner_mod.simulate_point
    calls = {"n": 0}

    def dying(spec):
        calls["n"] += 1
        if calls["n"] > 2:
            raise ReproError("injected crash")  # non-transient: no retry
        return real(spec)

    monkeypatch.setattr(runner_mod, "simulate_point", dying)
    with pytest.raises(ReproError, match="injected crash"):
        run_sweep(_spec(), cache_dir=str(tmp_path), jobs=1,
                  run_id="RCRASH")
    monkeypatch.setattr(runner_mod, "simulate_point", real)
    state = replay_journal(journal_path(tmp_path / "runs", "RCRASH"))
    done_before = {t for t in state.completed if t.startswith("sweep:")}
    assert done_before  # the crash landed mid-sweep

    resumed = run_sweep(_spec(), cache_dir=str(tmp_path), jobs=1,
                        run_id="RCRASH", resume=True)
    assert resumed.points_cached >= len(done_before) - 1  # + baseline
    reference = run_sweep(_spec(), cache_dir=str(tmp_path / "ref"))
    assert resumed.result.to_json() == reference.result.to_json()
    # Completed points were never re-simulated: only the missing
    # points' (workload, model, machine) triples ran.
    state = replay_journal(journal_path(tmp_path / "runs", "RCRASH"))
    assert state.finished


def test_sweep_counters_recorded(tmp_path):
    outcome = run_sweep(_spec(), cache_dir=str(tmp_path), jobs=1)
    metrics = outcome.metrics.to_dict()
    assert metrics["sweep_points_total"] == 4
    assert metrics["sweep_points_cached"] == 0
    assert metrics["sweep_points_per_second"] > 0
    assert "sweep" in outcome.metrics.render()


def test_latency_axis_changes_measured_cycles(tmp_path):
    spec = _spec(issue_widths=(8,), caches=("perfect",),
                 models=("superblock",),
                 latency_sets=(("pa7100", ()),
                               ("slowload", (("load", 6),))))
    outcome = run_sweep(spec, cache_dir=str(tmp_path), jobs=1)
    by_set = {p["axes"]["latencies"]:
              p["workloads"]["wc"]["superblock"]["cycles"]
              for p in outcome.result.points}
    assert by_set["slowload"] > by_set["pa7100"]
