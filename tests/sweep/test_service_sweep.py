"""Sweep jobs through the experiment service: submit, watch, dedup."""

import pytest

from repro.robustness.errors import ReproError
from repro.service.client import ServiceClient
from repro.service.quota import QuotaConfig
from repro.service.server import ServiceConfig, ServiceRunner
from repro.service.spec import ServiceJobSpec
from repro.sweep import SweepResult, SweepSpec, run_sweep

GRID = dict(name="svc", workloads=["wc"], models=["superblock", "cmov"],
            issue_widths=[1, 2], caches=["perfect"], scale=0.2,
            max_steps=2_000_000)


def _config(tmp_path, **kwargs):
    kwargs.setdefault("quota", QuotaConfig(rate=10_000.0, burst=10_000,
                                           max_concurrent=10_000))
    kwargs.setdefault("workers", 1)
    return ServiceConfig(cache_dir=str(tmp_path), **kwargs)


def test_sweep_spec_kind_validates_and_digests():
    spec = ServiceJobSpec(kind="sweep", sweep=dict(GRID))
    # Normalized to the canonical sweep dict.
    assert spec.sweep["models"] == ["superblock", "cmov"]
    same = ServiceJobSpec(kind="sweep", sweep=dict(GRID, name="other"))
    assert spec.request_digest() != same.request_digest()  # name differs
    assert ServiceJobSpec(kind="sweep", sweep=dict(GRID)).request_digest() \
        == spec.request_digest()


def test_sweep_field_requires_sweep_kind():
    with pytest.raises(ReproError, match="only valid with kind='sweep'"):
        ServiceJobSpec(kind="bench", workload="wc", sweep=dict(GRID))
    with pytest.raises(ReproError, match="requires a sweep spec"):
        ServiceJobSpec(kind="sweep")


def test_invalid_sweep_grid_rejected_at_admission():
    with pytest.raises(ReproError):
        ServiceJobSpec(kind="sweep", sweep=dict(GRID, issue_widths=[0]))


def test_sweep_job_round_trip_matches_direct_run(tmp_path):
    with ServiceRunner(_config(tmp_path / "svc")) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        response = client.submit(
            ServiceJobSpec(kind="sweep", sweep=dict(GRID)))
        job_id = response["job"]["job_id"]
        result_json = client.result(job_id, timeout=120)
    direct = run_sweep(SweepSpec.from_dict(dict(GRID)),
                       cache_dir=str(tmp_path / "direct"))
    assert result_json == direct.result.to_json()
    parsed = SweepResult.from_dict(__import__("json").loads(result_json))
    assert len(parsed.points) == 2


def test_watch_streams_point_granularity_progress(tmp_path):
    with ServiceRunner(_config(tmp_path)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        response = client.submit(
            ServiceJobSpec(kind="sweep", sweep=dict(GRID)))
        job_id = response["job"]["job_id"]
        progress = []
        for event in client.watch(job_id):
            if event.get("event") == "progress":
                progress.append(event)
        # 2 lattice points + the scalar baseline point.
        assert [p["tasks_done"] for p in progress] == [1, 2, 3]
        assert all(p["tasks_total"] == 3 for p in progress)
        assert all(p["task"].startswith("sweep:") for p in progress)


def test_bench_job_watch_reports_tasks_total(tmp_path):
    with ServiceRunner(_config(tmp_path)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        response = client.submit(ServiceJobSpec(
            kind="bench", workload="wc", models=("superblock",),
            scale=0.2, max_steps=2_000_000))
        job_id = response["job"]["job_id"]
        progress = [e for e in client.watch(job_id)
                    if e.get("event") == "progress"]
        # baseline + one model = 2 simulate tasks.
        assert progress and progress[-1]["tasks_done"] == 2
        assert all(p["tasks_total"] == 2 for p in progress)
