"""OR-tree / AND-chain height reduction (paper Section 3.2)."""

from repro.emu import run_program
from repro.ir import (Function, IRBuilder, Imm, Instruction, Opcode,
                      Program, VReg)
from repro.partial.ortree import reduce_or_trees


def _chain_program(n_terms: int, op: Opcode, values: list[int],
                   init_zero: bool = True):
    """P = init; P = P <op> t_i for random-ish term values."""
    prog = Program()
    fn = Function("main")
    prog.add_function(fn)
    b = IRBuilder(fn, fn.new_block("entry"))
    terms = [b.mov(Imm(v)) for v in values]
    acc = fn.new_vreg()
    if init_zero:
        b.emit(Instruction(Opcode.MOV, dest=acc, srcs=(Imm(0),)))
    else:
        b.emit(Instruction(Opcode.MOV, dest=acc, srcs=(Imm(1),)))
    for t in terms:
        b.emit(Instruction(op, dest=acc, srcs=(acc, t)))
    b.ret(acc)
    return prog, fn


def _height(block, target) -> int:
    """Dependence height of the final value of ``target``."""
    depth: dict = {}
    for inst in block.instructions:
        if inst.dest is None:
            continue
        d = 0
        for s in inst.srcs:
            if isinstance(s, VReg) and s in depth:
                d = max(d, depth[s])
        depth[inst.dest] = d + 1
    return depth.get(target, 0)


def test_or_chain_becomes_log_depth():
    values = [0, 1, 0, 0, 1, 0, 0, 0]
    prog, fn = _chain_program(8, Opcode.OR, values)
    golden = run_program(prog).return_value
    block = fn.entry
    ret_src = block.instructions[-1].srcs[0]
    before = _height(block, ret_src)
    changed = reduce_or_trees(fn, block)
    assert changed == 1
    after = _height(block, ret_src)
    assert after < before
    assert run_program(prog).return_value == golden


def test_and_chain_reduced():
    values = [1, 1, 1, 1, 1, 0, 1]
    prog, fn = _chain_program(7, Opcode.AND, values, init_zero=False)
    golden = run_program(prog).return_value
    changed = reduce_or_trees(fn, fn.entry)
    assert changed == 1
    assert run_program(prog).return_value == golden


def test_and_not_chain_uses_de_morgan():
    values = [0, 0, 1, 0, 0]
    prog, fn = _chain_program(5, Opcode.AND_NOT, values,
                              init_zero=False)
    golden = run_program(prog).return_value
    changed = reduce_or_trees(fn, fn.entry)
    assert changed == 1
    # De Morgan: one and_not of an OR tree.
    and_nots = [i for i in fn.entry.instructions
                if i.op is Opcode.AND_NOT]
    assert len(and_nots) == 1
    assert run_program(prog).return_value == golden


def test_short_chains_left_alone():
    prog, fn = _chain_program(2, Opcode.OR, [1, 0])
    assert reduce_or_trees(fn, fn.entry) == 0


def test_chain_frozen_by_interleaved_read():
    """A read of the accumulator between contributions blocks rebuild."""
    prog = Program()
    fn = Function("main")
    prog.add_function(fn)
    b = IRBuilder(fn, fn.new_block("entry"))
    t1, t2, t3 = (b.mov(Imm(v)) for v in (1, 0, 1))
    acc = fn.new_vreg()
    b.emit(Instruction(Opcode.MOV, dest=acc, srcs=(Imm(0),)))
    b.emit(Instruction(Opcode.OR, dest=acc, srcs=(acc, t1)))
    snoop = b.add(acc, Imm(100))   # mid-chain observer
    b.emit(Instruction(Opcode.OR, dest=acc, srcs=(acc, t2)))
    b.emit(Instruction(Opcode.OR, dest=acc, srcs=(acc, t3)))
    total = b.add(acc, snoop)
    b.ret(total)
    golden = run_program(prog).return_value
    assert reduce_or_trees(fn, fn.entry) == 0
    assert run_program(prog).return_value == golden


def test_or_values_preserved_for_all_patterns():
    for bits in range(16):
        values = [(bits >> k) & 1 for k in range(4)]
        prog, fn = _chain_program(4, Opcode.OR, values)
        golden = run_program(prog).return_value
        reduce_or_trees(fn, fn.entry)
        assert run_program(prog).return_value == golden, values
