"""Basic conversions (paper Figure 3): full-pred IR -> cmov sequences."""

import pytest

from repro.emu import run_program
from repro.emu.memory import SAFE_ADDR
from repro.ir import (Function, GlobalVar, IRBuilder, ISALevel, Imm,
                      Instruction, Opcode, PReg, PredDest, Program, PType,
                      VReg, verify_program)
from repro.ir.opcodes import OpCategory
from repro.partial.conversion import (ConversionParams, convert_to_partial)


def _program_with(builder_fn) -> Program:
    prog = Program()
    prog.add_global(GlobalVar("g", 4, 4))
    fn = Function("main")
    prog.add_function(fn)
    b = IRBuilder(fn, fn.new_block("entry"))
    builder_fn(b, fn)
    return prog


def _convert_and_run(prog, inputs=None, params=None):
    convert_to_partial(prog.functions["main"], params)
    verify_program(prog, ISALevel.PARTIAL)
    return run_program(prog, inputs=inputs)


@pytest.mark.parametrize("flag_value,expected", [(1, 42), (0, 7)])
def test_guarded_arith_becomes_speculate_plus_cmov(flag_value, expected):
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(flag_value), Imm(1),
                      (PredDest(p, PType.U),))
        dest = b.mov(Imm(7))
        b.emit(Instruction(Opcode.ADD, dest=dest, srcs=(Imm(40), Imm(2)),
                           pred=p))
        b.ret(dest)

    prog = _program_with(body)
    golden = run_program(prog).return_value
    assert golden == expected
    result = _convert_and_run(prog)
    assert result.return_value == expected
    # The converted code contains a conditional move and no predicates.
    ops = [i.op for i in prog.functions["main"].all_instructions()]
    assert Opcode.CMOV in ops


@pytest.mark.parametrize("flag_value", [0, 1])
def test_guarded_store_uses_safe_addr(flag_value):
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(flag_value), Imm(1),
                      (PredDest(p, PType.U),))
        b.emit(Instruction(Opcode.STORE,
                           srcs=(b.global_addr("g"), Imm(0), Imm(99)),
                           pred=p))
        out = b.load(b.global_addr("g"), Imm(0))
        b.ret(out)

    prog = _program_with(body)
    result = _convert_and_run(prog)
    assert result.return_value == (99 if flag_value else 0)
    ops = [i.op for i in prog.functions["main"].all_instructions()]
    # cmov_com redirects the address to $safe_addr when suppressed.
    assert Opcode.CMOV_COM in ops
    assert Opcode.STORE in ops


def test_guarded_load_is_silent():
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(0), Imm(1), (PredDest(p, PType.U),))
        dest = b.mov(Imm(5))
        load = Instruction(Opcode.LOAD, dest=dest,
                           srcs=(b.global_addr("g"), Imm(0)), pred=p)
        b.emit(load)
        b.ret(dest)

    prog = _program_with(body)
    _convert_and_run(prog)
    loads = [i for i in prog.functions["main"].all_instructions()
             if i.cat is OpCategory.LOAD]
    assert all(i.speculative for i in loads)


@pytest.mark.parametrize("a,bv", [(0, 0), (0, 1), (1, 0), (1, 1)])
def test_or_type_define_conversion(a, bv):
    def body(b, fn):
        p = fn.new_preg()
        b.pred_clear()
        b.pred_define("eq", Imm(a), Imm(1), (PredDest(p, PType.OR),))
        b.pred_define("eq", Imm(bv), Imm(1), (PredDest(p, PType.OR),))
        dest = b.mov(Imm(0))
        b.emit(Instruction(Opcode.MOV, dest=dest, srcs=(Imm(1),), pred=p))
        b.ret(dest)

    prog = _program_with(body)
    result = _convert_and_run(prog)
    assert result.return_value == (1 if (a or bv) else 0)


@pytest.mark.parametrize("pin,cmp_true", [(0, 0), (0, 1), (1, 0), (1, 1)])
@pytest.mark.parametrize("ptype", list(PType))
def test_every_ptype_with_guard_matches_table1(pin, cmp_true, ptype):
    """The lowered logic must agree with Table 1 for every type."""
    from repro.machine.predicates import apply_pred_define

    def body(b, fn):
        p_in = fn.new_preg()
        p_out = fn.new_preg()
        b.pred_define("eq", Imm(pin), Imm(1), (PredDest(p_in, PType.U),))
        # Seed p_out with 0 via clear (both models start cleared).
        b.pred_clear_dummy = None
        b.pred_define("eq", Imm(cmp_true), Imm(1),
                      (PredDest(p_out, ptype),), guard=p_in)
        dest = b.mov(Imm(0))
        b.emit(Instruction(Opcode.MOV, dest=dest, srcs=(Imm(1),),
                           pred=p_out))
        b.ret(dest)

    prog = _program_with(body)
    golden = run_program(prog).return_value
    expected = apply_pred_define(ptype, 0, pin, cmp_true)
    assert golden == expected
    result = _convert_and_run(prog)
    assert result.return_value == golden


@pytest.mark.parametrize("value", [3, 20])
def test_guarded_branch_trick(value):
    """blt src1,src2,L (p)  ->  ge t,src1,src2; blt t,p,L  (Figure 3)."""
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(1), Imm(1), (PredDest(p, PType.U),))
        br = Instruction(Opcode.BLT, srcs=(Imm(value), Imm(10)),
                         target="low", pred=p)
        b.emit(br)
        b.ret(Imm(100))
        b.set_block(fn.new_block("low"))
        b.ret(Imm(200))

    prog = _program_with(body)
    golden = run_program(prog).return_value
    assert golden == (200 if value < 10 else 100)
    result = _convert_and_run(prog)
    assert result.return_value == golden


def test_guarded_ret_outlined():
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(1), Imm(1), (PredDest(p, PType.U),))
        b.emit(Instruction(Opcode.RET, srcs=(Imm(55),), pred=p))
        b.ret(Imm(77))

    prog = _program_with(body)
    result = _convert_and_run(prog)
    assert result.return_value == 55


def test_excepting_divide_uses_safe_val():
    """Figure 4: without silent instructions the divisor is guarded."""
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(0), Imm(1), (PredDest(p, PType.U),))
        zero = b.mov(Imm(0))
        dest = b.mov(Imm(9))
        b.emit(Instruction(Opcode.DIV, dest=dest, srcs=(Imm(8), zero),
                           pred=p))
        b.ret(dest)

    prog = _program_with(body)
    params = ConversionParams(non_excepting=False)
    result = _convert_and_run(prog, params=params)
    # Guard false: dest unchanged, and no fault despite divisor 0.
    assert result.return_value == 9
    divs = [i for i in prog.functions["main"].all_instructions()
            if i.op is Opcode.DIV]
    assert divs and not any(d.speculative for d in divs)


def test_select_mode_uses_select():
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(1), Imm(1), (PredDest(p, PType.U),))
        b.emit(Instruction(Opcode.STORE,
                           srcs=(b.global_addr("g"), Imm(0), Imm(5)),
                           pred=p))
        out = b.load(b.global_addr("g"), Imm(0))
        b.ret(out)

    prog = _program_with(body)
    params = ConversionParams(use_select=True)
    result = _convert_and_run(prog, params=params)
    assert result.return_value == 5
    ops = [i.op for i in prog.functions["main"].all_instructions()]
    assert Opcode.SELECT in ops


def test_safe_addr_is_low_reserved_slot():
    assert SAFE_ADDR == 32
