"""Liveness (including predication subtleties) and loop detection."""

from repro.analysis.liveness import block_use_def, live_before_each, liveness
from repro.analysis.loops import find_loops, innermost_loops
from repro.ir import (BasicBlock, Function, IRBuilder, Imm, Instruction,
                      Opcode, PReg, PredDest, PType, VReg)


def test_block_use_def_simple():
    block = BasicBlock("b")
    block.append(Instruction(Opcode.ADD, dest=VReg(0),
                             srcs=(VReg(1), VReg(2))))
    block.append(Instruction(Opcode.MOV, dest=VReg(3), srcs=(VReg(0),)))
    uses, defs = block_use_def(block)
    assert uses == {VReg(1), VReg(2)}
    assert defs == {VReg(0), VReg(3)}


def test_guarded_def_is_not_definite_kill():
    block = BasicBlock("b")
    block.append(Instruction(Opcode.MOV, dest=VReg(0), srcs=(Imm(1),),
                             pred=PReg(1)))
    uses, defs = block_use_def(block)
    assert VReg(0) not in defs
    assert PReg(1) in uses


def test_same_guard_use_not_upward_exposed():
    """The Fig. 2 pattern: def and use under the same guard."""
    block = BasicBlock("b")
    p = PReg(1)
    block.append(Instruction(Opcode.LOAD, dest=VReg(0),
                             srcs=(VReg(9), Imm(0)), pred=p))
    block.append(Instruction(Opcode.ADD, dest=VReg(2),
                             srcs=(VReg(0), Imm(1)), pred=p))
    uses, _defs = block_use_def(block)
    assert VReg(0) not in uses
    assert VReg(9) in uses


def test_different_guard_use_is_exposed():
    block = BasicBlock("b")
    block.append(Instruction(Opcode.MOV, dest=VReg(0), srcs=(Imm(1),),
                             pred=PReg(1)))
    block.append(Instruction(Opcode.ADD, dest=VReg(2),
                             srcs=(VReg(0), Imm(1)), pred=PReg(2)))
    uses, _defs = block_use_def(block)
    assert VReg(0) in uses


def test_guard_redefinition_invalidates_kill():
    """Redefining the guard between def and use re-exposes the use."""
    block = BasicBlock("b")
    p = PReg(1)
    block.append(Instruction(Opcode.MOV, dest=VReg(0), srcs=(Imm(1),),
                             pred=p))
    block.append(Instruction(Opcode.PRED_EQ, srcs=(Imm(0), Imm(0)),
                             pdests=(PredDest(p, PType.U),)))
    block.append(Instruction(Opcode.ADD, dest=VReg(2),
                             srcs=(VReg(0), Imm(1)), pred=p))
    uses, _defs = block_use_def(block)
    assert VReg(0) in uses


def test_cmov_dest_not_killed():
    block = BasicBlock("b")
    block.append(Instruction(Opcode.CMOV, dest=VReg(0),
                             srcs=(VReg(1), VReg(2))))
    uses, defs = block_use_def(block)
    assert VReg(0) not in defs
    assert VReg(0) in uses


def _loop_function():
    fn = Function("f")
    entry = fn.new_block("entry")
    head = fn.new_block("head")
    body = fn.new_block("body")
    exit_ = fn.new_block("exit")
    b = IRBuilder(fn, entry)
    i = fn.new_vreg()
    s = fn.new_vreg()
    b.mov_to(i, Imm(0))
    b.mov_to(s, Imm(0))
    b.jump("head")
    b.set_block(head)
    b.bge(i, Imm(10), "exit")
    b.jump("body")
    b.set_block(body)
    ns = b.add(s, i)
    b.mov_to(s, ns)
    ni = b.add(i, Imm(1))
    b.mov_to(i, ni)
    b.jump("head")
    b.set_block(exit_)
    b.ret(s)
    return fn, i, s


def test_liveness_around_loop():
    fn, i, s = _loop_function()
    live = liveness(fn)
    assert i in live.live_in["head"]
    assert s in live.live_in["head"]
    assert s in live.live_in["exit"]
    assert i not in live.live_in["exit"]
    assert i not in live.live_in["entry"]


def test_live_before_each_positions():
    block = BasicBlock("b")
    block.append(Instruction(Opcode.ADD, dest=VReg(0),
                             srcs=(VReg(1), Imm(1))))
    block.append(Instruction(Opcode.MUL, dest=VReg(2),
                             srcs=(VReg(0), VReg(0))))
    result = live_before_each(block, frozenset({VReg(2)}))
    assert VReg(1) in result[0]
    assert VReg(0) not in result[0]
    assert VReg(0) in result[1]


def test_live_before_each_revives_exit_targets():
    block = BasicBlock("b")
    block.append(Instruction(Opcode.BEQ, srcs=(VReg(5), Imm(0)),
                             target="cold"))
    block.append(Instruction(Opcode.MOV, dest=VReg(7), srcs=(Imm(0),)))
    live_in_map = {"cold": frozenset({VReg(7)})}
    result = live_before_each(block, frozenset(), live_in_map)
    # r7 is needed if the exit is taken, even though the straight-line
    # code redefines it afterwards.
    assert VReg(7) in result[0]


def test_find_loops():
    fn, _i, _s = _loop_function()
    loops = find_loops(fn)
    assert len(loops) == 1
    assert loops[0].header == "head"
    assert loops[0].body == {"head", "body"}
    assert loops[0].is_innermost


def test_nested_loops():
    fn = Function("f")
    for name in ("entry", "oh", "ob", "ih", "ib", "exit"):
        fn.new_block(name)
    b = IRBuilder(fn, fn.block("entry"))
    b.jump("oh")
    b.set_block(fn.block("oh"))
    b.bge(VReg(0), Imm(10), "exit")
    b.jump("ob")
    b.set_block(fn.block("ob"))
    b.jump("ih")
    b.set_block(fn.block("ih"))
    b.bge(VReg(1), Imm(5), "oh")
    b.jump("ib")
    b.set_block(fn.block("ib"))
    b.jump("ih")
    b.set_block(fn.block("exit"))
    b.ret(Imm(0))
    loops = find_loops(fn)
    headers = {l.header for l in loops}
    assert headers == {"oh", "ih"}
    inner = [l for l in loops if l.header == "ih"][0]
    outer = [l for l in loops if l.header == "oh"][0]
    assert inner.is_innermost
    assert not outer.is_innermost
    assert inner.body < outer.body
    assert innermost_loops(fn) == [inner]


def _round_robin_liveness(fn):
    """The pre-worklist formulation, kept as the test oracle: sweep
    every block until nothing changes."""
    from repro.analysis.cfg import successors_map
    from repro.analysis.liveness import Liveness, _scan_block

    succs = successors_map(fn)
    live_in = {b.name: frozenset() for b in fn.blocks}
    live_out = {b.name: frozenset() for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            name = block.name
            out = set()
            for s in succs[name]:
                out |= live_in[s]
            new_in = frozenset(_scan_block(block.instructions,
                                           frozenset(out), live_in))
            out_f = frozenset(out)
            if out_f != live_out[name] or new_in != live_in[name]:
                live_out[name] = out_f
                live_in[name] = new_in
                changed = True
    return Liveness(live_in=dict(live_in), live_out=dict(live_out))


def test_worklist_liveness_matches_round_robin_on_real_code():
    # Regression for the worklist rewrite: the fixpoint must be
    # identical to the old whole-function sweep on real compiled code,
    # including predicated hyperblocks.
    from repro.analysis.profile import Profile
    from repro.fuzz.generator import generate_case
    from repro.machine.descriptor import MachineDescription
    from repro.toolchain import Model, compile_for_model, frontend

    case = generate_case(0x11e, 2)
    machine = MachineDescription(issue_width=8, branch_issue_limit=1,
                                 name="8-issue,1-branch")
    base = frontend(case.source)
    profile = Profile.collect(base, inputs=case.inputs,
                              max_steps=300_000)
    for model in (Model.SUPERBLOCK, Model.FULLPRED):
        compiled = compile_for_model(base, model, profile, machine)
        for fn in compiled.program.functions.values():
            got = liveness(fn)
            want = _round_robin_liveness(fn)
            assert got.live_in == want.live_in, (model, fn.name)
            assert got.live_out == want.live_out, (model, fn.name)
