"""Register pressure statistics tests."""

from repro.analysis.pressure import function_pressure, program_pressure
from repro.analysis.profile import Profile
from repro.lang import compile_minic
from repro.machine.descriptor import fig8_machine
from repro.toolchain import Model, compile_for_model, frontend

SRC = """
int a[64];
int n;
int out;
int main() {
  int i; int t;
  for (i = 0; i < n; i = i + 1) {
    if (a[i] > 4) { t = a[i] * 3 + 1; out = out + t; }
  }
  return out;
}
"""

INPUTS = {"a": [(k * 5) % 11 for k in range(60)], "n": [60]}


def test_straightline_pressure():
    prog = compile_minic("int main() { int a; int b; a = 1; b = 2; "
                         "return a + b; }")
    stats = function_pressure(prog.functions["main"])
    assert stats.max_live_int >= 2
    assert stats.max_live_pred == 0
    assert stats.total_pregs == 0


def test_float_pressure_tracked_separately():
    prog = compile_minic("""
    float x; float y;
    int main() { x = 1.5; y = x * 2.0; return y; }
    """)
    stats = function_pressure(prog.functions["main"])
    assert stats.max_live_float >= 1


def test_partial_predication_raises_pressure():
    """The paper's Section 1 claim: partial predication needs more
    registers for intermediate values."""
    base = frontend(SRC)
    profile = Profile.collect(base, inputs=INPUTS)
    machine = fig8_machine()
    by_model = {
        model: program_pressure(
            compile_for_model(base, model, profile, machine).program)
        for model in Model
    }
    assert by_model[Model.CMOV].total_vregs >= \
        by_model[Model.FULLPRED].total_vregs
    # Full predication uses predicate registers; cmov uses none.
    assert by_model[Model.FULLPRED].total_pregs > 0
    assert by_model[Model.CMOV].total_pregs == 0


def test_program_pressure_aggregates():
    prog = compile_minic("""
    int f(int x) { return x + 1; }
    int main() { return f(1) + f(2); }
    """)
    whole = program_pressure(prog)
    assert whole.total_vregs >= \
        function_pressure(prog.functions["f"]).total_vregs
