"""CFG analyses: successor maps, orderings, dominators."""

from repro.analysis.cfg import (dominates, dominators, immediate_dominators,
                                predecessors_map, reverse_postorder,
                                successors_map)
from repro.ir import Function, IRBuilder, Imm, VReg


def diamond() -> Function:
    """entry -> (then | other) -> join -> exit structure."""
    fn = Function("f")
    entry = fn.new_block("entry")
    then = fn.new_block("then")
    other = fn.new_block("other")
    join = fn.new_block("join")
    b = IRBuilder(fn, entry)
    b.beq(VReg(0), Imm(0), "then")
    b.jump("other")
    b.set_block(then)
    b.jump("join")
    b.set_block(other)
    b.jump("join")
    b.set_block(join)
    b.ret(Imm(0))
    return fn


def loop_fn() -> Function:
    fn = Function("f")
    entry = fn.new_block("entry")
    head = fn.new_block("head")
    body = fn.new_block("body")
    exit_ = fn.new_block("exit")
    b = IRBuilder(fn, entry)
    b.jump("head")
    b.set_block(head)
    b.blt(VReg(0), Imm(10), "body")
    b.jump("exit")
    b.set_block(body)
    b.jump("head")
    b.set_block(exit_)
    b.ret(Imm(0))
    return fn


def test_successors_diamond():
    fn = diamond()
    succs = successors_map(fn)
    assert succs["entry"] == ["then", "other"]
    assert succs["then"] == ["join"]
    assert succs["join"] == []


def test_predecessors_diamond():
    preds = predecessors_map(diamond())
    assert sorted(preds["join"]) == ["other", "then"]
    assert preds["entry"] == []


def test_reverse_postorder_starts_at_entry():
    order = reverse_postorder(diamond())
    assert order[0] == "entry"
    assert order[-1] == "join"
    assert set(order) == {"entry", "then", "other", "join"}


def test_reverse_postorder_excludes_unreachable():
    fn = diamond()
    fn.new_block("island").append(
        __import__("repro.ir", fromlist=["Instruction"]).Instruction(
            __import__("repro.ir", fromlist=["Opcode"]).Opcode.RET))
    order = reverse_postorder(fn)
    assert "island" not in order


def test_dominators_diamond():
    fn = diamond()
    dom = dominators(fn)
    assert dom["join"] == {"entry", "join"}
    assert dom["then"] == {"entry", "then"}
    assert dominates(dom, "entry", "join")
    assert not dominates(dom, "then", "join")


def test_dominators_loop():
    fn = loop_fn()
    dom = dominators(fn)
    assert dom["body"] == {"entry", "head", "body"}
    assert dom["exit"] == {"entry", "head", "exit"}


def test_immediate_dominators():
    fn = diamond()
    idom = immediate_dominators(fn)
    assert idom["entry"] is None
    assert idom["then"] == "entry"
    assert idom["join"] == "entry"


def test_immediate_dominators_chain():
    fn = loop_fn()
    idom = immediate_dominators(fn)
    assert idom["head"] == "entry"
    assert idom["body"] == "head"
    assert idom["exit"] == "head"
