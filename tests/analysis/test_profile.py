"""Profile collection and edge-count reconstruction."""

from repro.analysis.profile import Profile
from repro.lang import compile_minic
from repro.opt import normalize_basic_blocks, optimize_program

SRC = """
int n;
int main() {
  int i; int evens;
  evens = 0;
  for (i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) evens = evens + 1;
  }
  return evens;
}
"""


def _program():
    prog = compile_minic(SRC)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    return prog


def test_block_counts_scale_with_input():
    prog = _program()
    p10 = Profile.collect(prog, inputs={"n": [10]})
    p50 = Profile.collect(prog, inputs={"n": [50]})
    fn = prog.functions["main"]
    hot10 = max(p10.block_count("main", b.name) for b in fn.blocks)
    hot50 = max(p50.block_count("main", b.name) for b in fn.blocks)
    assert hot50 > hot10 >= 10


def test_taken_probability_bounds():
    prog = _program()
    profile = Profile.collect(prog, inputs={"n": [40]})
    for uid in profile.branch_outcomes:
        p = profile.taken_probability(uid)
        assert 0.0 <= p <= 1.0
    # Unknown branch defaults to 0.5.
    assert profile.taken_probability(999999) == 0.5


def test_edge_counts_conserve_flow():
    prog = _program()
    profile = Profile.collect(prog, inputs={"n": [30]})
    fn = prog.functions["main"]
    edges = profile.edge_counts(fn)
    # Flow into each block equals its execution count (except entry).
    incoming: dict[str, int] = {}
    for (src, dst), count in edges.items():
        incoming[dst] = incoming.get(dst, 0) + count
    for block in fn.blocks:
        expected = profile.block_count("main", block.name)
        if block.name == fn.entry.name:
            continue
        assert incoming.get(block.name, 0) == expected, block.name


def test_profile_from_execution_roundtrip():
    from repro.emu import run_program
    prog = _program()
    result = run_program(prog, inputs={"n": [12]})
    profile = Profile.from_execution(result)
    assert profile.block_counts == result.block_counts
