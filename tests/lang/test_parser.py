"""MiniC parser tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.parser import ParseError, parse


def first_fn(src):
    unit = parse(src)
    return unit.functions[0]


def test_global_and_function():
    unit = parse("int g; int main() { return g; }")
    assert len(unit.globals) == 1
    assert unit.globals[0].name == "g"
    assert unit.functions[0].name == "main"


def test_array_global():
    unit = parse("char buf[128]; int main() { return 0; }")
    g = unit.globals[0]
    assert isinstance(g.type, ast.ArrayType)
    assert g.type.size == 128
    assert g.type.elem == ast.CHAR


def test_global_initializer():
    unit = parse("int n = 5; int main() { return n; }")
    assert isinstance(unit.globals[0].init, ast.IntLit)
    assert unit.globals[0].init.value == 5


def test_precedence_mul_over_add():
    fn = first_fn("int main() { return 1 + 2 * 3; }")
    ret = fn.body[0]
    assert isinstance(ret, ast.Return)
    assert isinstance(ret.value, ast.Binary)
    assert ret.value.op == "+"
    assert isinstance(ret.value.right, ast.Binary)
    assert ret.value.right.op == "*"


def test_precedence_comparison_over_bitand():
    fn = first_fn("int main() { return 1 & 2 == 3; }")
    # '==' binds tighter than '&' (C-style).
    assert fn.body[0].value.op == "&"


def test_logical_short_circuit_structure():
    fn = first_fn("int main() { if (1 && 2 || 3) return 1; return 0; }")
    cond = fn.body[0].cond
    assert isinstance(cond, ast.Logical)
    assert cond.op == "||"
    assert isinstance(cond.left, ast.Logical)
    assert cond.left.op == "&&"


def test_unary_operators():
    fn = first_fn("int main() { return -!~1; }")
    expr = fn.body[0].value
    assert isinstance(expr, ast.Unary) and expr.op == "-"
    assert expr.operand.op == "!"
    assert expr.operand.operand.op == "~"


def test_ternary():
    fn = first_fn("int main() { return 1 ? 2 : 3; }")
    assert isinstance(fn.body[0].value, ast.Conditional)


def test_assignment_vs_expression_statement():
    fn = first_fn("int main() { int x; x = 1; x + 2; return x; }")
    assert isinstance(fn.body[1], ast.Assign)
    assert isinstance(fn.body[2], ast.ExprStmt)


def test_array_assignment():
    fn = first_fn("int a[4]; int main() { a[2] = 9; return a[2]; }")
    stmt = fn.body[0]
    assert isinstance(stmt, ast.Assign)
    assert stmt.index is not None


def test_if_else_chain():
    fn = first_fn("""
    int main() {
      int x;
      if (x) x = 1;
      else if (x > 2) x = 2;
      else x = 3;
      return x;
    }""")
    top = fn.body[1]
    assert isinstance(top, ast.If)
    assert isinstance(top.otherwise[0], ast.If)


def test_while_and_for():
    fn = first_fn("""
    int main() {
      int i; int s;
      for (i = 0; i < 10; i = i + 1) s = s + i;
      while (s > 0) { s = s - 3; break; }
      return s;
    }""")
    assert isinstance(fn.body[2], ast.For)
    assert isinstance(fn.body[3], ast.While)
    assert isinstance(fn.body[3].body[1], ast.Break)


def test_for_with_empty_clauses():
    fn = first_fn("int main() { int i; for (;;) break; return i; }")
    loop = fn.body[1]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_call_with_args():
    fn = first_fn("""
    int add(int a, int b) { return a + b; }
    int main() { return add(1, 2 * 3); }
    """)
    # first function is 'add'
    assert fn.name == "add"


def test_params_parsed():
    unit = parse("int f(int a, float b) { return a; } "
                 "int main() { return f(1, 2.0); }")
    params = unit.functions[0].params
    assert [p.name for p in params] == ["a", "b"]
    assert params[1].type == ast.FLOAT


def test_parse_errors():
    with pytest.raises(ParseError):
        parse("int main() { return 1 + ; }")
    with pytest.raises(ParseError):
        parse("int main() { if (1) }")
    with pytest.raises(ParseError):
        parse("int main() { return 0 }")
    with pytest.raises(ParseError):
        parse("banana main() { }")
