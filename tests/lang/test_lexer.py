"""MiniC lexer tests."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src)[:-1]]


def test_keywords_vs_identifiers():
    toks = tokenize("int x while whilex")
    assert [t.kind for t in toks[:-1]] == ["kw", "id", "kw", "id"]


def test_numbers():
    toks = tokenize("0 42 12345")
    assert [t.value for t in toks[:-1]] == [0, 42, 12345]
    assert all(t.kind == "num" for t in toks[:-1])


def test_float_literals():
    toks = tokenize("1.5 0.25 3.0")
    assert [t.kind for t in toks[:-1]] == ["fnum", "fnum", "fnum"]
    assert toks[0].value == 1.5


def test_integer_followed_by_dot_method():
    # "1." without digits is an int then an error char, not a float.
    with pytest.raises(LexError):
        tokenize("1.")


def test_char_literals_and_escapes():
    toks = tokenize(r"'a' '\n' '\t' '\0' '\\'")
    assert [t.value for t in toks[:-1]] == [97, 10, 9, 0, 92]
    assert all(t.kind == "num" for t in toks[:-1])


def test_unterminated_char():
    with pytest.raises(LexError):
        tokenize("'a")


def test_maximal_munch_operators():
    toks = tokenize("a<<=b")  # '<<' then '=' (no <<= operator)
    assert [t.kind for t in toks[:-1]] == ["id", "<<", "=", "id"]
    toks = tokenize("a<=b")
    assert [t.kind for t in toks[:-1]] == ["id", "<=", "id"]


def test_logical_operators():
    assert kinds("a && b || !c")[:-1] == ["id", "&&", "id", "||", "!",
                                          "id"]


def test_comments_are_skipped():
    toks = tokenize("a // line comment\nb /* block\ncomment */ c")
    assert [t.value for t in toks[:-1]] == ["a", "b", "c"]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_line_numbers_advance():
    toks = tokenize("a\nb\n\nc")
    assert [t.line for t in toks[:-1]] == [1, 2, 4]


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_eof_token_present():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == "eof"
