"""MiniC semantic analysis tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.sema import SemaError, analyze


def check(src):
    return analyze(parse(src))


def test_undeclared_variable():
    with pytest.raises(SemaError, match="undeclared"):
        check("int main() { return x; }")


def test_duplicate_global():
    with pytest.raises(SemaError, match="duplicate"):
        check("int g; int g; int main() { return 0; }")


def test_duplicate_local():
    with pytest.raises(SemaError, match="duplicate"):
        check("int main() { int x; int x; return 0; }")


def test_missing_main():
    with pytest.raises(SemaError, match="main"):
        check("int f() { return 0; }")


def test_call_arity_checked():
    with pytest.raises(SemaError, match="takes"):
        check("int f(int a) { return a; } int main() { return f(); }")


def test_call_undeclared_function():
    with pytest.raises(SemaError, match="undeclared function"):
        check("int main() { return g(1); }")


def test_indexing_scalar_rejected():
    with pytest.raises(SemaError, match="non-array"):
        check("int x; int main() { return x[0]; }")


def test_whole_array_assignment_rejected():
    with pytest.raises(SemaError):
        check("int a[4]; int main() { a = 3; return 0; }")


def test_float_array_index_rejected():
    with pytest.raises(SemaError, match="index"):
        check("int a[4]; float f; int main() { return a[f]; }")


def test_break_outside_loop():
    with pytest.raises(SemaError, match="break"):
        check("int main() { break; return 0; }")


def test_continue_inside_loop_ok():
    check("int main() { int i; while (i) { continue; } return 0; }")


def test_modulo_requires_ints():
    with pytest.raises(SemaError):
        check("float f; int main() { return f % 2; }")


def test_bitops_require_ints():
    with pytest.raises(SemaError):
        check("float f; int main() { return f & 1; }")


def test_type_annotation_int_float():
    info = check("""
    float f;
    int main() { int x; x = 2; return x + 1; }
    """)
    fn = info.functions["main"].decl
    ret = fn.body[-1]
    assert ret.value.type == ast.INT


def test_mixed_arithmetic_promotes_to_float():
    info = check("float f; int main() { int x; f = x + 1.5; return 0; }")
    fn = info.functions["main"].decl
    assign = fn.body[1]
    assert assign.value.type == ast.FLOAT


def test_comparison_yields_int():
    info = check("float f; int main() { return f < 2.0; }")
    ret = info.functions["main"].decl.body[0]
    assert ret.value.type == ast.INT


def test_char_reads_promote_to_int():
    info = check("char b[4]; int main() { return b[0]; }")
    ret = info.functions["main"].decl.body[0]
    assert ret.value.type == ast.INT


def test_array_parameters_rejected():
    # The grammar itself has no array-parameter syntax.
    with pytest.raises(Exception):
        check("int f(int a[10]) { return 0; } int main() { return 0; }")


def test_array_used_as_scalar_rejected():
    with pytest.raises(SemaError):
        check("int a[4]; int main() { return a + 1; }")


def test_global_array_initializer_rejected():
    with pytest.raises(SemaError):
        check("int a[4] = 3; int main() { return 0; }")


def test_shadowing_function_name_rejected():
    with pytest.raises(SemaError, match="shadows"):
        check("int f() { return 0; } int main() { int f; return 0; }")
