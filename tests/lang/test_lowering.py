"""MiniC → IR lowering, validated by executing the lowered program."""

import pytest

from repro.emu import EmulationFault, run_program
from repro.ir import ISALevel, Opcode, verify_program
from repro.lang import compile_minic


def run_src(src, inputs=None, **kwargs):
    prog = compile_minic(src)
    verify_program(prog, ISALevel.BASELINE)
    return run_program(prog, inputs=inputs, **kwargs).return_value


def test_arithmetic():
    assert run_src("int main() { return 2 + 3 * 4 - 6 / 2; }") == 11


def test_division_truncates_toward_zero():
    assert run_src("int main() { return (0 - 7) / 2; }") == -3
    assert run_src("int main() { return (0 - 7) % 2; }") == -1


def test_bitwise_and_shifts():
    assert run_src("int main() { return (5 & 3) | (1 << 4) ^ 2; }") == 19
    assert run_src("int main() { return (0 - 8) >> 1; }") == -4


def test_comparisons():
    assert run_src("int main() { return (1 < 2) + (2 <= 2) + (3 > 4)"
                   " + (4 >= 5) + (5 == 5) + (6 != 6); }") == 3


def test_short_circuit_and_does_not_evaluate_rhs():
    src = """
    int hits;
    int bump() { hits = hits + 1; return 1; }
    int main() {
      int r;
      r = 0 && bump();
      return hits * 10 + r;
    }
    """
    assert run_src(src) == 0


def test_short_circuit_or_skips_rhs():
    src = """
    int hits;
    int bump() { hits = hits + 1; return 1; }
    int main() {
      int r;
      r = 1 || bump();
      return hits * 10 + r;
    }
    """
    assert run_src(src) == 1


def test_logical_value_materialization():
    assert run_src("int main() { int a; a = 5; return (a > 2) && "
                   "(a < 9); }") == 1


def test_ternary():
    assert run_src("int main() { int x; x = 7; "
                   "return x > 5 ? 10 : 20; }") == 10


def test_while_loop_sum():
    src = """
    int main() {
      int i; int s;
      i = 0; s = 0;
      while (i < 10) { s = s + i; i = i + 1; }
      return s;
    }
    """
    assert run_src(src) == 45


def test_for_with_break_continue():
    src = """
    int main() {
      int i; int s;
      s = 0;
      for (i = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        s = s + i;
      }
      return s;
    }
    """
    assert run_src(src) == 1 + 3 + 5 + 7 + 9


def test_global_scalars_persist():
    src = """
    int total;
    int add(int x) { total = total + x; return total; }
    int main() { add(3); add(4); return total; }
    """
    assert run_src(src) == 7


def test_global_scalar_initializer():
    assert run_src("int n = 41; int main() { return n + 1; }") == 42


def test_array_store_load_int():
    src = """
    int a[8];
    int main() {
      int i;
      for (i = 0; i < 8; i = i + 1) a[i] = i * i;
      return a[7] + a[3];
    }
    """
    assert run_src(src) == 49 + 9


def test_char_array_byte_semantics():
    src = """
    char b[4];
    int main() {
      b[0] = 300;
      return b[0];
    }
    """
    # Byte store truncates to 300 & 0xFF == 44.
    assert run_src(src) == 44


def test_local_array_is_static():
    src = """
    int main() {
      int tmp[4];
      tmp[1] = 11;
      tmp[2] = tmp[1] * 2;
      return tmp[2];
    }
    """
    assert run_src(src) == 22


def test_float_arithmetic_and_conversion():
    src = """
    float f;
    int main() {
      f = 1.5;
      f = f * 4.0 + 1.0;
      return f / 2.0;
    }
    """
    assert run_src(src) == 3  # 7.0 / 2.0 = 3.5 -> int 3


def test_float_comparison_drives_branch():
    src = """
    float f;
    int main() {
      f = 0.25;
      if (f < 0.5) return 1;
      return 2;
    }
    """
    assert run_src(src) == 1


def test_float_array():
    src = """
    float w[4];
    int main() {
      int i;
      float acc;
      for (i = 0; i < 4; i = i + 1) w[i] = i * 1.5;
      acc = 0.0;
      for (i = 0; i < 4; i = i + 1) acc = acc + w[i];
      return acc * 10.0;
    }
    """
    assert run_src(src) == 90  # (0 + 1.5 + 3 + 4.5) * 10


def test_recursion():
    src = """
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(12); }
    """
    assert run_src(src) == 144


def test_mutual_recursion():
    src = """
    int is_odd(int n);
    """
    # MiniC has no forward declarations; use ordering instead.
    src = """
    int is_even(int n) {
      if (n == 0) return 1;
      return is_odd2(n - 1);
    }
    int is_odd2(int n) {
      if (n == 0) return 0;
      return is_even(n - 1);
    }
    int main() { return is_even(10); }
    """
    # Functions are resolved after parsing the whole unit, so forward
    # references work.
    assert run_src(src) == 1


def test_inputs_injection():
    src = """
    int data[16];
    int n;
    int main() {
      int i; int s;
      s = 0;
      for (i = 0; i < n; i = i + 1) s = s + data[i];
      return s;
    }
    """
    assert run_src(src, inputs={"data": [1, 2, 3, 4], "n": [4]}) == 10


def test_implicit_return_zero():
    assert run_src("int main() { int x; x = 5; }") == 0


def test_division_by_zero_faults():
    with pytest.raises(EmulationFault):
        run_src("int n; int main() { return 5 / n; }")


def test_negative_numbers_via_unary():
    assert run_src("int main() { return -5 + 3; }") == -2
