"""Per-tenant quotas: token bucket refill and the concurrency cap."""

import pytest

from repro.robustness.errors import QuotaExceededError
from repro.service.quota import QuotaConfig, QuotaManager, TokenBucket


class ManualClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_bucket_burst_then_refill():
    clock = ManualClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert [bucket.take() for _ in range(4)] == [True, True, True,
                                                False]
    assert bucket.retry_after() == pytest.approx(0.5)
    clock.now += 0.5
    assert bucket.take()


def test_bucket_never_exceeds_burst():
    clock = ManualClock()
    bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
    clock.now += 1000.0
    assert [bucket.take() for _ in range(3)] == [True, True, False]


def test_concurrency_cap_is_checked_before_the_bucket():
    clock = ManualClock()
    quotas = QuotaManager(config=QuotaConfig(rate=1.0, burst=1,
                                             max_concurrent=1),
                          clock=clock)
    quotas.admit("t")
    with pytest.raises(QuotaExceededError) as exc:
        quotas.admit("t")
    assert exc.value.kind == "concurrency"
    assert exc.value.retry_after == 0.0
    assert exc.value.exit_code == 20
    # The rejected admit must not have burned the (empty) bucket's
    # refill progress: releasing frees the slot, and the bucket is the
    # next gate.
    quotas.release("t")
    with pytest.raises(QuotaExceededError) as exc:
        quotas.admit("t")
    assert exc.value.kind == "rate"
    assert exc.value.retry_after > 0


def test_rate_rejection_names_the_tenant_and_refills():
    clock = ManualClock()
    quotas = QuotaManager(config=QuotaConfig(rate=0.5, burst=2,
                                             max_concurrent=10),
                          clock=clock)
    quotas.admit("alice")
    quotas.admit("alice")
    with pytest.raises(QuotaExceededError) as exc:
        quotas.admit("alice")
    assert exc.value.tenant == "alice"
    clock.now += exc.value.retry_after + 0.01
    quotas.admit("alice")


def test_tenants_are_isolated():
    clock = ManualClock()
    quotas = QuotaManager(config=QuotaConfig(rate=1.0, burst=1,
                                             max_concurrent=1),
                          clock=clock)
    quotas.admit("a")
    quotas.admit("b")  # a's exhaustion never throttles b
    assert quotas.active_jobs("a") == quotas.active_jobs("b") == 1


def test_restore_charges_concurrency_without_a_token():
    clock = ManualClock()
    quotas = QuotaManager(config=QuotaConfig(rate=0.001, burst=1,
                                             max_concurrent=2),
                          clock=clock)
    quotas.admit("t")          # consumes the only token
    quotas.restore("t")        # recovered job: no token needed
    assert quotas.active_jobs("t") == 2
    with pytest.raises(QuotaExceededError) as exc:
        quotas.admit("t")
    assert exc.value.kind == "concurrency"


def test_release_never_goes_negative():
    quotas = QuotaManager()
    quotas.release("ghost")
    assert quotas.active_jobs("ghost") == 0


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        QuotaConfig(rate=0)
    with pytest.raises(ValueError):
        QuotaConfig(burst=0)
    with pytest.raises(ValueError):
        QuotaConfig(max_concurrent=0)
