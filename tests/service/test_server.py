"""End-to-end service tests over a real socket, stub executors.

The pipeline itself is exercised by ``test_service_pipeline.py`` and
the chaos campaign; here a stub executor keeps the focus on the
service semantics: admission, dedup, quotas, deadlines, drain/restart.
"""

import threading
import time

import pytest

from repro.robustness.errors import (DeadlineExceededError,
                                     QuotaExceededError, ReproError,
                                     ServiceOverloadedError)
from repro.service.client import ServiceClient
from repro.service.executor import ExecutionOutcome, result_to_json
from repro.service.quota import QuotaConfig
from repro.service.server import (ServiceConfig, ServiceRunner,
                                  read_endpoint)
from repro.service.spec import ServiceJobSpec


def spec_for(i=0, **kwargs):
    kwargs.setdefault("max_steps", 1_000_000 + i)
    return ServiceJobSpec(kind="bench", workload="wc", scale=0.25,
                          **kwargs)


def stub_executor(delay=0.0, calls=None, honor_deadline=False):
    def run(spec, cache_dir, run_id, jobs=1, deadline_remaining=None):
        if calls is not None:
            calls.append({"run_id": run_id, "jobs": jobs,
                          "deadline_remaining": deadline_remaining})
        if honor_deadline and deadline_remaining is not None \
                and deadline_remaining <= 0:
            raise DeadlineExceededError("expired in the queue",
                                        deadline=spec.deadline or 0)
        if delay:
            time.sleep(delay)
        return ExecutionOutcome(
            result_json=result_to_json(
                {"digest": spec.request_digest()}),
            counters={}, crash_evidence=False, resumed_tasks=0,
            wall_seconds=delay)
    return run


def open_quota():
    return QuotaConfig(rate=10_000.0, burst=10_000,
                       max_concurrent=10_000)


def config_for(tmp_path, **kwargs):
    kwargs.setdefault("quota", open_quota())
    kwargs.setdefault("queue_depth", 32)
    kwargs.setdefault("workers", 2)
    return ServiceConfig(cache_dir=str(tmp_path), **kwargs)


def test_submit_status_wait_round_trip(tmp_path):
    with ServiceRunner(config_for(tmp_path),
                       executor=stub_executor(delay=0.05)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        response = client.submit(spec_for(0))
        assert response["deduped"] is False
        job_id = response["job"]["job_id"]
        final = client.wait(job_id, timeout=10)
        assert final["state"] == "done"
        assert final["result_json"] == result_to_json(
            {"digest": spec_for(0).request_digest()})
        assert client.result(job_id) == final["result_json"]


def test_endpoint_discovery_via_cache_dir(tmp_path):
    with ServiceRunner(config_for(tmp_path)) as runner:
        host, port = read_endpoint(tmp_path)
        assert (host, port) == ("127.0.0.1", runner.port)
        client = ServiceClient(cache_dir=str(tmp_path))
        assert client.ping()["ok"]
    with pytest.raises(ReproError):  # endpoint file removed on drain
        read_endpoint(tmp_path)


def test_concurrent_identical_submissions_execute_once(tmp_path):
    """The dedup satellite: N simultaneous clients, one execution,
    byte-identical result bytes for every observer."""
    n = 5
    calls = []
    with ServiceRunner(config_for(tmp_path),
                       executor=stub_executor(delay=0.3,
                                              calls=calls)) as runner:
        barrier = threading.Barrier(n)
        responses = [None] * n

        def submit(i):
            client = ServiceClient("127.0.0.1", runner.port)
            barrier.wait()
            responses[i] = client.submit(spec_for(0), tenant=f"t{i}")

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert all(responses)
        job_ids = {r["job"]["job_id"] for r in responses}
        assert len(job_ids) == 1
        assert sum(r["deduped"] for r in responses) == n - 1
        client = ServiceClient("127.0.0.1", runner.port)
        results = {client.result(job_id, timeout=10)
                   for job_id in job_ids for _ in range(n)}
        assert len(results) == 1  # byte-identical for all observers
        metrics = client.stats()["metrics"]
        assert metrics["jobs_admitted"] == 1
        assert metrics["jobs_deduped"] == n - 1
        final = client.status(job_ids.pop())
        assert final["observers"] == n
    assert len(calls) == 1  # exactly one execution happened


def test_completed_digest_served_from_done_cache(tmp_path):
    calls = []
    with ServiceRunner(config_for(tmp_path),
                       executor=stub_executor(calls=calls)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        first = client.submit(spec_for(0))
        client.wait(first["job"]["job_id"], timeout=10)
        again = client.submit(spec_for(0))
        assert again["deduped"] is True
        assert again["job"]["job_id"] == first["job"]["job_id"]
    assert len(calls) == 1


def test_queue_saturation_sheds_typed(tmp_path):
    config = config_for(tmp_path, queue_depth=2, workers=1)
    with ServiceRunner(config,
                       executor=stub_executor(delay=0.5)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        shed = []
        for i in range(8):
            try:
                client.submit(spec_for(i))
            except ServiceOverloadedError as exc:
                shed.append(exc)
        assert shed
        assert all(e.exit_code == 19 for e in shed)
        assert all(e.retry_after > 0 for e in shed)
        assert client.stats()["metrics"]["jobs_shed"] == len(shed)


def test_quota_rejection_travels_typed_over_the_wire(tmp_path):
    config = config_for(
        tmp_path, workers=1,
        quota=QuotaConfig(rate=1000, burst=1000, max_concurrent=1))
    with ServiceRunner(config,
                       executor=stub_executor(delay=0.5)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        client.submit(spec_for(0), tenant="alice")
        with pytest.raises(QuotaExceededError) as exc:
            client.submit(spec_for(1), tenant="alice")
        assert exc.value.exit_code == 20
        assert exc.value.kind == "concurrency"
        assert exc.value.tenant == "alice"
        # Dedup observers ride for free: same digest, same tenant.
        assert client.submit(spec_for(0),
                             tenant="alice")["deduped"] is True
        # Other tenants are unaffected.
        client.submit(spec_for(2), tenant="bob")


def test_deadline_propagates_and_expires_typed(tmp_path):
    calls = []
    config = config_for(tmp_path, workers=1)
    executor = stub_executor(delay=0.3, calls=calls,
                             honor_deadline=True)
    with ServiceRunner(config, executor=executor) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        blocker = client.submit(spec_for(0))["job"]
        roomy = client.submit(spec_for(1, deadline=60.0))["job"]
        doomed = client.submit(spec_for(2, deadline=0.05))["job"]
        assert client.wait(roomy["job_id"], timeout=10)["state"] \
            == "done"
        final = client.wait(doomed["job_id"], timeout=10)
        assert final["state"] == "failed"
        assert final["error"]["type"] == "DeadlineExceededError"
        assert final["error"]["exit_code"] == 21
        with pytest.raises(DeadlineExceededError):
            client.result(doomed["job_id"])
        client.wait(blocker["job_id"], timeout=10)
    by_run = {c["run_id"]: c for c in calls}
    assert by_run[blocker["run_id"]]["deadline_remaining"] is None
    assert 50 < by_run[roomy["run_id"]]["deadline_remaining"] <= 60


def test_watch_streams_until_end(tmp_path):
    with ServiceRunner(config_for(tmp_path),
                       executor=stub_executor(delay=0.2)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        job_id = client.submit(spec_for(0))["job"]["job_id"]
        events = list(client.watch(job_id))
        assert events[0]["event"] == "job"
        assert events[-1]["event"] == "end"
        assert events[-1]["job"]["state"] == "done"


def test_protocol_rejects_garbage_typed(tmp_path):
    with ServiceRunner(config_for(tmp_path)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        with pytest.raises(ReproError):
            client.status("J-no-such-job")
        with pytest.raises(ReproError):
            client._request({"op": "frobnicate"})
        with pytest.raises(ReproError):
            client.submit({"kind": "teapot"})


def test_drain_then_restart_resumes_interrupted_jobs(tmp_path):
    slow = config_for(tmp_path, workers=1, drain_grace=0.05)
    runner = ServiceRunner(slow, executor=stub_executor(delay=0.4))
    runner.start()
    client = ServiceClient("127.0.0.1", runner.port)
    running = client.submit(spec_for(0))["job"]
    queued = client.submit(spec_for(1))["job"]
    runner.stop(timeout=30)  # grace expires with both jobs unfinished

    fast = config_for(tmp_path, workers=1)
    with ServiceRunner(fast, executor=stub_executor()) as restarted:
        client = ServiceClient("127.0.0.1", restarted.port)
        for job in (running, queued):
            final = client.wait(job["job_id"], timeout=10)
            assert final["state"] == "done"
            assert final["result_json"]
        # Same digests resubmitted now coalesce with the recovery.
        assert client.submit(spec_for(0))["deduped"] is True
        assert client.stats()["metrics"]["jobs_admitted"] == 2


def test_draining_server_sheds_new_submissions(tmp_path):
    config = config_for(tmp_path, workers=1, drain_grace=5.0)
    with ServiceRunner(config,
                       executor=stub_executor(delay=0.5)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        client.submit(spec_for(0))  # keeps the drain window open
        client.drain()
        with pytest.raises(ServiceOverloadedError):
            client.submit(spec_for(1))


def test_breaker_mode_recorded_on_the_job(tmp_path):
    with ServiceRunner(config_for(tmp_path, jobs=2),
                       executor=stub_executor()) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        job_id = client.submit(spec_for(0))["job"]["job_id"]
        assert client.wait(job_id, timeout=10)["mode"] == "pool"
        assert client.stats()["service"]["breaker"] == "closed"
