"""Job specs: validation, wire format, and the CAS request digest."""

import pytest

from repro.robustness.errors import ReproError
from repro.service.spec import ServiceJobSpec


def test_digest_is_stable_across_processes_and_orderings():
    a = ServiceJobSpec(kind="bench", workload="wc",
                       models=("cmov", "superblock", "fullpred"))
    b = ServiceJobSpec(kind="bench", workload="wc",
                       models=("superblock", "fullpred", "cmov"))
    assert a.request_digest() == b.request_digest()
    assert len(a.request_digest()) == 64


def test_delivery_knobs_do_not_enter_the_digest():
    base = ServiceJobSpec(kind="bench", workload="wc")
    hurried = ServiceJobSpec(kind="bench", workload="wc", deadline=5.0)
    assert base.request_digest() == hurried.request_digest()


def test_compute_knobs_do_enter_the_digest():
    base = ServiceJobSpec(kind="bench", workload="wc")
    for other in (
            ServiceJobSpec(kind="bench", workload="cmp"),
            ServiceJobSpec(kind="bench", workload="wc", scale=0.25),
            ServiceJobSpec(kind="bench", workload="wc", width=4),
            ServiceJobSpec(kind="bench", workload="wc",
                           real_caches=True),
            ServiceJobSpec(kind="bench", workload="wc",
                           models=("cmov",)),
            ServiceJobSpec(kind="bench", workload="wc",
                           max_steps=1_000_000)):
        assert base.request_digest() != other.request_digest()


def test_round_trips_through_the_wire_format():
    spec = ServiceJobSpec(kind="source", source="int main(){return 3;}",
                          models=("cmov",), width=4, deadline=30.0)
    again = ServiceJobSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.deadline == 30.0
    assert again.request_digest() == spec.request_digest()


@pytest.mark.parametrize("data", [
    {"kind": "teapot"},
    {"kind": "source"},
    {"kind": "source", "source": "   "},
    {"kind": "bench"},
    {"kind": "bench", "workload": "no-such-workload"},
    {"kind": "bench", "workload": "wc", "models": ["alpha"]},
    {"kind": "bench", "workload": "wc", "models": []},
    {"kind": "bench", "workload": "wc", "width": 0},
    {"kind": "bench", "workload": "wc", "scale": -1},
    {"kind": "bench", "workload": "wc", "max_steps": 0},
    {"kind": "bench", "workload": "wc", "deadline": -5},
    {"kind": "bench", "workload": "wc", "surprise": 1},
    "not an object",
])
def test_invalid_specs_raise_typed(data):
    with pytest.raises(ReproError):
        ServiceJobSpec.from_dict(data)


def test_workload_expansion_per_kind():
    bench = ServiceJobSpec(kind="bench", workload="wc")
    assert [w.name for w in bench.workloads()] == ["wc"]
    src = ServiceJobSpec(kind="source", source="int main(){return 1;}")
    (w,) = src.workloads()
    assert w.name.startswith("svc-")
    assert w.source == "int main(){return 1;}"
    figures = ServiceJobSpec(kind="figures")
    assert len(figures.workloads()) >= 4


def test_machine_reflects_spec_knobs():
    spec = ServiceJobSpec(kind="bench", workload="wc", width=4,
                          branches=2)
    machine = spec.machine()
    assert machine.issue_width == 4
    assert machine.branch_issue_limit == 2
