"""Cluster worker ops over the service wire, and watch reconnection.

The lease state always lives on the server's store; these tests prove
the RPC transport preserves the same semantics the direct-store path
has — including typed fencing rejections crossing the socket — and
that a `repro watch` stream survives a server restart without losing
or replaying events.
"""

import threading
import time

import pytest

from repro.engine.recovery.leases import ShardLeaseStore
from repro.robustness.errors import LeaseFencedError, ReproError
from repro.service.client import ServiceClient
from repro.service.cluster import ClusterConfig, campaign_dir, open_campaign
from repro.service.server import ServiceConfig, ServiceRunner
from repro.sweep.spec import SweepSpec

from tests.service.test_server import (config_for, spec_for,
                                       stub_executor)

SPEC = SweepSpec(name="rpc-t", scale=0.05, workloads=("wc",),
                 models=("superblock",), issue_widths=(2, 4))


def open_test_campaign(tmp_path):
    cache = str(tmp_path)
    open_campaign(cache, SPEC, ClusterConfig(shard_size=1), "fastpath")
    return ShardLeaseStore(campaign_dir(cache, SPEC.sweep_digest()))


def test_worker_ops_round_trip_over_the_wire(tmp_path):
    store = open_test_campaign(tmp_path)
    with ServiceRunner(config_for(tmp_path)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        worker_id = client.register_worker()
        assert worker_id in client.stats()["service"]["cluster_workers"]

        work = client.claim_shard(worker_id)
        assert work is not None and work["shard"] == 0
        assert work["manifest"]["name"] == "rpc-t"
        lease = client.shard_heartbeat(work["campaign"], work["lease"])
        assert lease["beats"] == 1
        assert client.shard_complete(work["campaign"], lease,
                                     {"points": [0]}) is True
        assert store.done(0)["points"] == [0]

        # Remaining shard claimed, then failed: the lease is released
        # and a typed failure record lands on the store.
        work = client.claim_shard(worker_id)
        assert work["shard"] == 1
        client.shard_fail(work["campaign"], work["lease"],
                          error="EmulationTimeout", message="slow",
                          transient=True)
        assert store.read(1) is None
        (fail,) = store.events("fail")
        assert (fail["error"], fail["transient"]) \
            == ("EmulationTimeout", True)

        client.unregister_worker(worker_id)
        assert worker_id not in \
            client.stats()["service"]["cluster_workers"]


def test_fencing_rejection_travels_typed(tmp_path):
    store = open_test_campaign(tmp_path)
    with ServiceRunner(config_for(tmp_path)) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        worker_id = client.register_worker()
        work = client.claim_shard(worker_id)
        # The coordinator (here: the test) fences the worker's lease.
        store.break_lease(work["shard"], work["lease"]["epoch"])
        store.claim(work["shard"], owner="successor")
        with pytest.raises(LeaseFencedError) as exc:
            client.shard_complete(work["campaign"], work["lease"],
                                  {"points": [0]})
        assert exc.value.exit_code == 27
        assert store.done(work["shard"]) is None


def test_watch_survives_a_server_restart(tmp_path):
    """The reconnect satellite: the stream drops mid-job when the
    server dies; the client backs off, re-reads the endpoint file, and
    resumes from the last journal index — no event lost, none replayed.
    """
    slow = config_for(tmp_path, workers=1, drain_grace=0.05)
    runner = ServiceRunner(slow, executor=stub_executor(delay=0.6))
    runner.start()
    client = ServiceClient(cache_dir=str(tmp_path))
    job_id = client.submit(spec_for(0))["job"]["job_id"]

    events = []
    done = threading.Event()
    failure = []

    def consume():
        try:
            # A generous retry budget: the only assertion is that the
            # stream *survives*, not how fast the restart happens.
            for event in client.watch(job_id, max_attempts=60,
                                      backoff_base=0.05,
                                      backoff_cap=1.0):
                events.append(event)
        except Exception as exc:  # noqa: BLE001 — asserted below
            failure.append(exc)
        finally:
            done.set()

    watcher = threading.Thread(target=consume, daemon=True)
    watcher.start()
    time.sleep(0.2)  # the stream is established and the job running
    runner.stop(timeout=30)  # grace expires: job interrupted, port gone

    with ServiceRunner(config_for(tmp_path, workers=1),
                       executor=stub_executor()):
        assert done.wait(timeout=60), "watch never reached the end"
    watcher.join(timeout=10)
    assert not failure, failure

    assert events[-1]["event"] == "end"
    assert events[-1]["job"]["state"] == "done"
    # Journal indexes are strictly increasing across the reconnect:
    # from_index suppressed the replay of everything already seen.
    indexes = [e["index"] for e in events if e.get("event") == "journal"]
    assert indexes == sorted(set(indexes))
    # More than one "job" header proves a reconnect actually happened.
    assert sum(1 for e in events if e.get("event") == "job") >= 2


def test_watch_gives_up_typed_when_the_server_stays_dead(tmp_path):
    # The job must outlive the drain grace, or a slow-machine stop()
    # lets it finish and the stream ends cleanly with nothing to retry.
    runner = ServiceRunner(config_for(tmp_path, workers=1,
                                      drain_grace=0.05),
                           executor=stub_executor(delay=5.0))
    runner.start()
    client = ServiceClient(cache_dir=str(tmp_path))
    job_id = client.submit(spec_for(0))["job"]["job_id"]
    stream = client.watch(job_id, max_attempts=2, backoff_base=0.05)
    assert next(stream)["event"] == "job"
    # A short join is enough: the drain closes the port (killing the
    # stream) long before the server thread finishes winding down.
    runner.stop(timeout=2)
    with pytest.raises(ReproError, match="could not be re-established"):
        for _ in stream:
            pass
    runner.stop(timeout=30)  # now reap the thread for real
