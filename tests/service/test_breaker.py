"""Circuit breaker: trip, serial degradation, half-open recovery."""

import pytest

from repro.service.breaker import (CLOSED, HALF_OPEN, OPEN,
                                   BreakerConfig, CircuitBreaker)


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def breaker():
    clock = ManualClock()
    b = CircuitBreaker(config=BreakerConfig(threshold=3, window=60.0,
                                            cooldown=30.0),
                       clock=clock)
    b.manual_clock = clock
    return b


def _storm(breaker, n):
    for _ in range(n):
        assert breaker.acquire_mode() == "pool"
        breaker.record("pool", crash_evidence=True)


def test_closed_breaker_hands_out_the_pool(breaker):
    assert breaker.state == CLOSED
    assert breaker.acquire_mode() == "pool"
    breaker.record("pool", crash_evidence=False)
    assert breaker.state == CLOSED


def test_crash_storm_trips_to_serial(breaker):
    _storm(breaker, 3)
    assert breaker.state == OPEN
    assert breaker.trips == 1
    assert breaker.acquire_mode() == "serial"


def test_evidence_outside_the_window_never_trips(breaker):
    for _ in range(2):
        breaker.acquire_mode()
        breaker.record("pool", crash_evidence=True)
    breaker.manual_clock.now += 61.0  # both crashes age out
    breaker.acquire_mode()
    breaker.record("pool", crash_evidence=True)
    assert breaker.state == CLOSED


def test_serial_outcomes_never_feed_the_breaker(breaker):
    _storm(breaker, 3)
    for _ in range(10):
        assert breaker.acquire_mode() == "serial"
        breaker.record("serial", crash_evidence=True)
    assert breaker.state == OPEN
    assert breaker.trips == 1


def test_half_open_issues_exactly_one_trial(breaker):
    _storm(breaker, 3)
    breaker.manual_clock.now += 30.0
    assert breaker.acquire_mode() == "pool"   # the trial
    assert breaker.state == HALF_OPEN
    assert breaker.acquire_mode() == "serial"  # not a second one


def test_clean_trial_closes_the_breaker(breaker):
    _storm(breaker, 3)
    breaker.manual_clock.now += 30.0
    assert breaker.acquire_mode() == "pool"
    breaker.record("pool", crash_evidence=False)
    assert breaker.state == CLOSED
    assert breaker.acquire_mode() == "pool"


def test_crashing_trial_reopens_and_restarts_cooldown(breaker):
    _storm(breaker, 3)
    breaker.manual_clock.now += 30.0
    assert breaker.acquire_mode() == "pool"
    breaker.record("pool", crash_evidence=True)
    assert breaker.state == OPEN
    breaker.manual_clock.now += 29.0  # cooldown restarted, not over
    assert breaker.acquire_mode() == "serial"
    breaker.manual_clock.now += 1.0
    assert breaker.acquire_mode() == "pool"


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        BreakerConfig(threshold=0)
    with pytest.raises(ValueError):
        BreakerConfig(window=0)
    with pytest.raises(ValueError):
        BreakerConfig(cooldown=0)
