"""Single-flight registry and job-record persistence."""

from repro.service.singleflight import (DONE, FAILED, RUNNING,
                                        JobRecord, SingleFlight,
                                        job_id_for, load_records,
                                        run_id_for, save_record)
from repro.service.spec import ServiceJobSpec


def _record(digest="d" * 64, state="queued", **kwargs):
    return JobRecord(job_id=job_id_for(digest), digest=digest,
                     tenant="t",
                     spec=ServiceJobSpec(kind="bench", workload="wc"),
                     state=state, run_id=run_id_for(digest), **kwargs)


def test_ids_are_deterministic_functions_of_the_digest():
    assert job_id_for("a" * 64) == "J" + "a" * 16
    assert run_id_for("a" * 64) == "S" + "a" * 16


def test_active_record_coalesces():
    reg = SingleFlight()
    record = _record(state=RUNNING)
    reg.admit(record)
    assert reg.coalesce(record.digest) is record
    assert reg.active_count == 1


def test_done_record_serves_from_cache():
    reg = SingleFlight()
    record = _record(state=DONE)
    record.result_json = '{"x":1}'
    reg.admit(record)
    reg.finish(record)
    assert reg.active_count == 0
    assert reg.coalesce(record.digest) is record


def test_failed_record_is_evicted_for_retry():
    reg = SingleFlight()
    record = _record(state=FAILED)
    reg.admit(record)
    reg.finish(record)
    assert reg.coalesce(record.digest) is None
    assert reg.lookup(record.digest) is None  # evicted, not cached


def test_done_cache_is_bounded():
    reg = SingleFlight(done_limit=2)
    records = [_record(digest=c * 64, state=DONE) for c in "abc"]
    for r in records:
        reg.admit(r)
        reg.finish(r)
    assert reg.lookup("a" * 64) is None       # oldest evicted
    assert reg.lookup("b" * 64) is records[1]
    assert reg.lookup("c" * 64) is records[2]


def test_by_job_id_searches_active_then_done():
    reg = SingleFlight()
    active, done = _record(digest="a" * 64), _record(digest="b" * 64,
                                                     state=DONE)
    reg.admit(active)
    reg.admit(done)
    reg.finish(done)
    assert reg.by_job_id(active.job_id) is active
    assert reg.by_job_id(done.job_id) is done
    assert reg.by_job_id("J-missing") is None


def test_records_persist_and_reload(tmp_path):
    record = _record(state=DONE, submitted_at=12.5)
    record.result_json = '{"cycles":7}'
    record.observers = 3
    save_record(tmp_path, record)
    (loaded,) = load_records(tmp_path)
    assert loaded.job_id == record.job_id
    assert loaded.state == DONE
    assert loaded.result_json == '{"cycles":7}'
    assert loaded.observers == 3
    assert loaded.spec == record.spec


def test_save_is_idempotent_per_transition(tmp_path):
    record = _record()
    save_record(tmp_path, record)
    record.state = RUNNING
    save_record(tmp_path, record)
    (loaded,) = load_records(tmp_path)
    assert loaded.state == RUNNING


def test_unparsable_record_files_are_skipped(tmp_path):
    save_record(tmp_path, _record())
    junk = tmp_path / "service" / "jobs" / "Jjunk.json"
    junk.write_text("{torn")
    assert len(load_records(tmp_path)) == 1


def test_failure_round_trips(tmp_path):
    record = _record(state=FAILED)
    record.error = {"type": "CompileError", "message": "boom",
                    "exit_code": 11}
    save_record(tmp_path, record)
    (loaded,) = load_records(tmp_path)
    assert loaded.error["exit_code"] == 11
