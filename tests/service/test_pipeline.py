"""Real-pipeline service execution: determinism, resume, deadlines."""

import json

import pytest

from repro.robustness.errors import DeadlineExceededError
from repro.service.client import ServiceClient
from repro.service.executor import execute_job
from repro.service.quota import QuotaConfig
from repro.service.server import ServiceConfig, ServiceRunner
from repro.service.singleflight import run_id_for
from repro.service.spec import ServiceJobSpec

SPEC = ServiceJobSpec(kind="bench", workload="wc", scale=0.25,
                      max_steps=2_000_000)


def test_execution_is_byte_deterministic_across_stores(tmp_path):
    a = execute_job(SPEC, str(tmp_path / "a"), "RUN-A")
    b = execute_job(SPEC, str(tmp_path / "b"), "RUN-B")
    assert a.result_json == b.result_json
    result = json.loads(a.result_json)
    assert result["kind"] == "bench"
    assert set(result["workloads"]["wc"]["models"]) == \
        {"superblock", "cmov", "fullpred"}
    speedup = result["workloads"]["wc"]["models"]["fullpred"]["speedup"]
    assert speedup > 0


def test_second_execution_resumes_with_zero_recompute(tmp_path):
    run_id = run_id_for(SPEC.request_digest())
    first = execute_job(SPEC, str(tmp_path), run_id)
    again = execute_job(SPEC, str(tmp_path), run_id)
    assert again.result_json == first.result_json
    # 3 models + the 1-issue baseline: all four journal-verified.
    assert again.resumed_tasks == 4
    assert again.counters["stages"].get(
        "simulate", {}).get("invocations", 0) == 0


def test_expired_deadline_fails_typed_before_execution(tmp_path):
    hurried = ServiceJobSpec(kind="bench", workload="wc", scale=0.25,
                             max_steps=2_000_000, deadline=10.0)
    with pytest.raises(DeadlineExceededError) as exc:
        execute_job(hurried, str(tmp_path), "RUN-X",
                    deadline_remaining=-1.0)
    assert exc.value.exit_code == 21


def test_service_end_to_end_with_real_pipeline(tmp_path):
    """Two identical submissions against a live server running the
    real pipeline: one execution, byte-identical canonical results."""
    config = ServiceConfig(
        cache_dir=str(tmp_path), workers=1,
        quota=QuotaConfig(rate=100, burst=100, max_concurrent=100))
    with ServiceRunner(config) as runner:
        client = ServiceClient("127.0.0.1", runner.port)
        first = client.submit(SPEC, tenant="alice")
        second = client.submit(SPEC, tenant="bob")
        assert second["deduped"] is True
        assert second["job"]["job_id"] == first["job"]["job_id"]
        result = client.result(first["job"]["job_id"], timeout=120)
        assert result == client.result(second["job"]["job_id"])
        metrics = client.stats()["metrics"]
        assert metrics["jobs_admitted"] == 1
        assert metrics["jobs_deduped"] == 1
        assert metrics["service_jobs_done"] == 1
        assert json.loads(result)["workloads"]["wc"]["baseline_cycles"] \
            > 0
