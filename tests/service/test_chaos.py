"""Service chaos campaign: every injection recovers or fails typed."""

import pytest

from repro.robustness.chaos import format_chaos_reports
from repro.service.chaos import run_service_chaos_campaign

EXPECTED_INJECTIONS = {
    "service-queue-saturation", "service-quota-exhaustion",
    "service-breaker-trip", "service-kill-resume",
    "service-dedup-storm",
}


@pytest.fixture(scope="module")
def reports():
    return run_service_chaos_campaign()


def test_campaign_covers_every_injection_kind(reports):
    assert {r.injection for r in reports} == EXPECTED_INJECTIONS


def test_every_injection_recovers_or_fails_typed(reports):
    bad = [r for r in reports if not r.ok]
    assert not bad, format_chaos_reports(bad)


def test_kill_resume_is_byte_identical_with_zero_recompute(reports):
    resume = next(r for r in reports
                  if r.injection == "service-kill-resume")
    assert resume.ok
    assert "byte-identical" in resume.message
    assert "zero recompute" in resume.message


def test_dedup_storm_coalesced_to_one_execution(reports):
    storm = next(r for r in reports
                 if r.injection == "service-dedup-storm")
    assert storm.ok
    assert "1 execution(s)" in storm.message


def test_shedding_and_quota_fail_typed(reports):
    by_name = {r.injection: r for r in reports}
    assert by_name["service-queue-saturation"].expected \
        == "typed-failure"
    assert by_name["service-quota-exhaustion"].expected \
        == "typed-failure"
    assert by_name["service-breaker-trip"].expected == "recover"
