"""Hyperblock formation end-to-end: selection, conversion, semantics."""

import copy

from repro.analysis.profile import Profile
from repro.emu import run_program
from repro.ir import ISALevel, verify_program
from repro.ir.opcodes import OpCategory
from repro.lang import compile_minic
from repro.opt import normalize_basic_blocks, optimize_program
from repro.regions.hyperblock import (HyperblockParams, form_hyperblocks,
                                      select_blocks)

LOOP_SRC = """
char buf[512];
int n;
int a; int b; int c;
int main() {
  int i; int ch;
  for (i = 0; i < n; i = i + 1) {
    ch = buf[i];
    if (ch == 'a') a = a + 1;
    else if (ch == 'b') b = b + 1;
    else c = c + 1;
  }
  return a * 10000 + b * 100 + c;
}
"""


def _prepared(src=LOOP_SRC, inputs=None):
    prog = compile_minic(src)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    profile = Profile.collect(prog, inputs=inputs)
    return prog, profile


def _inputs():
    data = ([ord("a")] * 3 + [ord("b")] * 2 + [ord("z")] * 5) * 30
    return {"buf": data, "n": [len(data)]}


def test_hot_loop_becomes_one_hyperblock():
    inputs = _inputs()
    prog, profile = _prepared(inputs=inputs)
    fn = prog.functions["main"]
    before_branches = sum(1 for i in fn.all_instructions()
                          if i.cat is OpCategory.BRANCH)
    formed = form_hyperblocks(fn, profile)
    assert len(formed) == 1
    after_branches = sum(1 for i in fn.all_instructions()
                         if i.cat is OpCategory.BRANCH)
    assert after_branches < before_branches


def test_semantics_preserved():
    inputs = _inputs()
    prog, profile = _prepared(inputs=inputs)
    golden = run_program(prog, inputs=inputs).return_value
    formed = form_hyperblocks(prog.functions["main"], profile)
    assert formed
    verify_program(prog, ISALevel.FULL)
    assert run_program(prog, inputs=inputs).return_value == golden


def test_call_blocks_excluded():
    src = """
    int n;
    int total;
    int helper(int x) { return x * 2; }
    int main() {
      int i;
      for (i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) total = total + helper(i);
        else total = total + 1;
      }
      return total;
    }
    """
    inputs = {"n": [200]}
    prog, profile = _prepared(src, inputs)
    golden = run_program(prog, inputs=inputs).return_value
    fn = prog.functions["main"]
    form_hyperblocks(fn, profile)
    # Any formed region must not contain a call instruction under a
    # guard (calls are hazardous; they stay outside).
    for block in fn.blocks:
        for inst in block.instructions:
            if inst.cat is OpCategory.CALL:
                assert inst.pred is None
    verify_program(prog, ISALevel.FULL)
    assert run_program(prog, inputs=inputs).return_value == golden


def test_cold_loops_skipped():
    inputs = _inputs()
    prog, profile = _prepared(inputs=inputs)
    fn = prog.functions["main"]
    params = HyperblockParams(min_entry_count=10_000_000)
    formed = form_hyperblocks(fn, profile, params)
    assert formed == []


def test_select_blocks_drops_side_entered():
    inputs = _inputs()
    prog, profile = _prepared(inputs=inputs)
    fn = prog.functions["main"]
    from repro.analysis.loops import find_loops
    loops = find_loops(fn)
    assert loops
    loop = loops[0]
    selected = select_blocks(fn, loop.header, set(loop.body), profile,
                             HyperblockParams())
    # Selection is closed: every selected block is reachable from the
    # header inside the selection, with no external predecessors.
    from repro.analysis.cfg import predecessors_map
    preds = predecessors_map(fn)
    for label in selected:
        if label == loop.header:
            continue
        assert all(p in selected for p in preds[label]), label


def test_oversaturation_bound_trims_regions():
    inputs = _inputs()
    prog, profile = _prepared(inputs=inputs)
    fn = prog.functions["main"]
    from repro.analysis.loops import find_loops
    loop = find_loops(fn)[0]
    tight = HyperblockParams(max_expansion_ratio=0.1)
    selected = select_blocks(fn, loop.header, set(loop.body), profile,
                             tight)
    loose = select_blocks(fn, loop.header, set(loop.body), profile,
                          HyperblockParams())
    assert len(selected) <= len(loose)
