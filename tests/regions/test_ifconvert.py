"""If-conversion unit tests, including the paper's Figure 1 example."""

import pytest

from repro.emu import run_program
from repro.ir import (Function, GlobalVar, IRBuilder, Imm, Instruction,
                      Opcode, Program, PType, VReg)
from repro.ir.opcodes import OpCategory
from repro.opt.cfg_cleanup import (make_jumps_explicit,
                                   normalize_basic_blocks)
from repro.regions.ifconvert import (IfConversionError, if_convert)


def figure1_program() -> tuple[Program, Function]:
    """The paper's Figure 1(a):

        if (a == 0 || b == 0) j = j + 1;
        else if (c != 0) k = k + 1; else k = k - 1;
        i = i + 1;
    """
    prog = Program()
    for g in ("a", "b", "c", "i", "j", "k"):
        prog.add_global(GlobalVar(g, 4, 1))
    fn = Function("main")
    prog.add_function(fn)
    for name in ("entry", "test_b", "then", "L1", "L2", "L3"):
        fn.new_block(name)
    b = IRBuilder(fn, fn.block("entry"))
    a = b.load(b.global_addr("a"), Imm(0))
    b.beq(a, Imm(0), "then")
    b.jump("test_b")
    b.set_block(fn.block("test_b"))
    bb = b.load(b.global_addr("b"), Imm(0))
    b.beq(bb, Imm(0), "then")
    b.jump("L1")
    b.set_block(fn.block("then"))
    j = b.load(b.global_addr("j"), Imm(0))
    b.store(b.global_addr("j"), Imm(0), b.add(j, Imm(1)))
    b.jump("L3")
    b.set_block(fn.block("L1"))
    c = b.load(b.global_addr("c"), Imm(0))
    b.bne(c, Imm(0), "L2")
    k1 = b.load(b.global_addr("k"), Imm(0))
    b.store(b.global_addr("k"), Imm(0), b.sub(k1, Imm(1)))
    b.jump("L3")
    b.set_block(fn.block("L2"))
    k2 = b.load(b.global_addr("k"), Imm(0))
    b.store(b.global_addr("k"), Imm(0), b.add(k2, Imm(1)))
    b.jump("L3")
    b.set_block(fn.block("L3"))
    i = b.load(b.global_addr("i"), Imm(0))
    b.store(b.global_addr("i"), Imm(0), b.add(i, Imm(1)))
    jv = b.load(b.global_addr("j"), Imm(0))
    kv = b.load(b.global_addr("k"), Imm(0))
    iv = b.load(b.global_addr("i"), Imm(0))
    b.ret(b.add(b.mul(jv, Imm(100)), b.add(b.mul(kv, Imm(10)), iv)))
    return prog, fn


def _reference(a, bvalue, c):
    j = k = i = 0
    if a == 0 or bvalue == 0:
        j += 1
    elif c != 0:
        k += 1
    else:
        k -= 1
    i += 1
    return j * 100 + k * 10 + i


@pytest.mark.parametrize("a", [0, 1])
@pytest.mark.parametrize("bvalue", [0, 1])
@pytest.mark.parametrize("c", [0, 1])
def test_figure1_semantics_preserved(a, bvalue, c):
    prog, fn = figure1_program()
    normalize_basic_blocks(fn)
    region = {"entry", "test_b", "then", "L1", "L1.n1", "L2", "L3"}
    if_convert(fn, region, "entry")
    inputs = {"a": [a], "b": [bvalue], "c": [c]}
    result = run_program(prog, inputs=inputs)
    assert result.return_value == _reference(a, bvalue, c)


def test_figure1_produces_or_type_defines():
    """'then' has two control contributions -> OR-type predicates and a
    pred_clear, while the join (L3, `i = i + 1`) stays unpredicated —
    exactly the paper's Figure 1(c)."""
    prog, fn = figure1_program()
    normalize_basic_blocks(fn)
    region = {"entry", "test_b", "then", "L1", "L1.n1", "L2", "L3"}
    hyper, info = if_convert(fn, region, "entry")
    assert info.uses_or_types
    assert hyper.instructions[0].op is Opcode.PRED_CLEAR
    or_defines = [i for i in hyper.instructions
                  if i.cat is OpCategory.PREDDEF
                  and any(pd.ptype in (PType.OR, PType.OR_BAR)
                          for pd in i.pdests)]
    assert len(or_defines) >= 2
    assert info.block_pred["L3"] is None
    assert info.block_pred["then"] is not None


def test_figure1_single_hyperblock_replaces_region():
    prog, fn = figure1_program()
    normalize_basic_blocks(fn)
    region = {"entry", "test_b", "then", "L1", "L1.n1", "L2", "L3"}
    if_convert(fn, region, "entry")
    names = [b.name for b in fn.blocks]
    assert names == ["entry"]


def test_branches_eliminated():
    prog, fn = figure1_program()
    normalize_basic_blocks(fn)
    before = sum(1 for i in fn.all_instructions()
                 if i.cat is OpCategory.BRANCH)
    region = {"entry", "test_b", "then", "L1", "L1.n1", "L2", "L3"}
    if_convert(fn, region, "entry")
    after = sum(1 for i in fn.all_instructions()
                if i.cat is OpCategory.BRANCH)
    assert before == 3
    assert after == 0


def test_parent_implication():
    prog, fn = figure1_program()
    normalize_basic_blocks(fn)
    region = {"entry", "test_b", "then", "L1", "L1.n1", "L2", "L3"}
    _hyper, info = if_convert(fn, region, "entry")
    # L2's guard was derived under L1's guard.
    p_l1 = info.block_pred["L1"]
    p_l2 = info.block_pred["L2"]
    if p_l1 is not None and p_l2 is not None:
        assert info.implies(p_l2, p_l1)
        assert not info.implies(p_l1, p_l2)
    # Everything implies the always-true predicate.
    assert info.implies(p_l1, None)
    assert not info.implies(None, p_l1)


def test_cyclic_region_rejected():
    prog = Program()
    fn = Function("main")
    prog.add_function(fn)
    a = fn.new_block("a")
    bblk = fn.new_block("b")
    b = IRBuilder(fn, a)
    b.beq(VReg(0), Imm(0), "b")
    b.ret(Imm(0))
    b.set_block(bblk)
    b.beq(VReg(0), Imm(1), "b")  # self loop not through entry
    b.jump("a")
    make_jumps_explicit(fn)
    with pytest.raises(IfConversionError):
        if_convert(fn, {"a", "b"}, "a")


def test_unguarded_join_blocks():
    """Blocks on every surviving path keep guard None (the join rule)."""
    prog = Program()
    prog.add_global(GlobalVar("g", 4, 1))
    fn = Function("main")
    prog.add_function(fn)
    for name in ("entry", "then", "join"):
        fn.new_block(name)
    b = IRBuilder(fn, fn.block("entry"))
    v = b.load(b.global_addr("g"), Imm(0))
    b.beq(v, Imm(0), "then")
    b.jump("join")
    b.set_block(fn.block("then"))
    b.store(b.global_addr("g"), Imm(0), Imm(1))
    b.jump("join")
    b.set_block(fn.block("join"))
    out = b.load(b.global_addr("g"), Imm(0))
    b.ret(out)
    make_jumps_explicit(fn)
    _hyper, info = if_convert(fn, {"entry", "then", "join"}, "entry")
    assert info.block_pred["join"] is None
    assert info.block_pred["then"] is not None
    for val in (0, 5):
        got = run_program(prog, inputs={"g": [val]}).return_value
        assert got == (1 if val == 0 else val)
