"""Superblock formation: trace selection, tail duplication, merging."""

from repro.analysis.profile import Profile
from repro.emu import run_program
from repro.ir import ISALevel, Opcode, verify_program
from repro.ir.opcodes import OpCategory
from repro.lang import compile_minic
from repro.opt import normalize_basic_blocks, optimize_program
from repro.regions.superblock import (SuperblockParams, form_superblocks,
                                      select_traces)

SRC = """
char buf[512];
int n;
int hits;
int misses;
int main() {
  int i; int c;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    if (c == 'x') hits = hits + 1;   // rare
    else misses = misses + 1;        // common
  }
  return hits * 1000 + misses;
}
"""


def _prepared(inputs):
    prog = compile_minic(SRC)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    profile = Profile.collect(prog, inputs=inputs)
    return prog, profile


def _inputs():
    data = [ord("y")] * 300
    for k in range(0, 300, 37):
        data[k] = ord("x")
    return {"buf": data, "n": [300]}


def test_trace_follows_likely_path():
    inputs = _inputs()
    prog, profile = _prepared(inputs)
    fn = prog.functions["main"]
    traces = select_traces(fn, profile, SuperblockParams())
    assert traces, "no trace selected on a hot loop"
    main_trace = max(traces, key=len)
    # The likely path (misses) should be on the trace; the rare branch
    # target should not.
    labels = set(main_trace)
    assert len(labels) >= 2


def test_formation_preserves_semantics_and_isa():
    inputs = _inputs()
    prog, profile = _prepared(inputs)
    golden = run_program(prog, inputs=inputs).return_value
    fn = prog.functions["main"]
    form_superblocks(fn, profile)
    verify_program(prog, ISALevel.BASELINE)
    assert run_program(prog, inputs=inputs).return_value == golden


def test_superblock_is_extended_block():
    """The merged trace has interior exit branches but a single entry."""
    inputs = _inputs()
    prog, profile = _prepared(inputs)
    fn = prog.functions["main"]
    formed = form_superblocks(fn, profile)
    assert formed
    block = fn.block(formed[0])
    branches = [i for i in block.instructions
                if i.cat is OpCategory.BRANCH]
    assert branches, "superblock lost its exit branches"
    # All but the terminator are interior.
    assert len(block.instructions) > 4


def test_tail_duplication_no_side_entrances():
    inputs = _inputs()
    prog, profile = _prepared(inputs)
    fn = prog.functions["main"]
    formed = form_superblocks(fn, profile)
    preds = fn.predecessors_map()
    for label in formed:
        block = fn.block(label)
        # Entry only at the top: no other block jumps into the middle
        # (the superblock is one block, so this is structural), and the
        # block's label is its only entry point.
        assert block.name == label
    # The program still verifies (no dangling targets).
    verify_program(prog, ISALevel.BASELINE)
    assert preds  # CFG intact


def test_inverted_branch_keeps_condition_sense():
    """Trace merging inverts branches whose taken edge stays on-trace."""
    src = """
    int n;
    int total;
    int main() {
      int i;
      for (i = 0; i < n; i = i + 1) {
        if (i % 8 != 0) total = total + 1;   // taken path is common
      }
      return total;
    }
    """
    prog = compile_minic(src)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    inputs = {"n": [123]}
    profile = Profile.collect(prog, inputs=inputs)
    golden = run_program(prog, inputs=inputs).return_value
    form_superblocks(prog.functions["main"], profile)
    assert run_program(prog, inputs=inputs).return_value == golden


def test_ret_tail_outlining():
    """Traces through branch+return blocks outline the return."""
    src = """
    int data[256];
    int n;
    int find(int v) {
      int i;
      for (i = 0; i < n; i = i + 1) {
        if (data[i] == v) return i;
      }
      return 0 - 1;
    }
    int main() {
      int k; int acc;
      acc = 0;
      for (k = 0; k < n; k = k + 1) acc = acc + find(data[k]);
      return acc;
    }
    """
    prog = compile_minic(src)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    inputs = {"data": list(range(40)), "n": [40]}
    profile = Profile.collect(prog, inputs=inputs)
    golden = run_program(prog, inputs=inputs).return_value
    for fn in prog.functions.values():
        form_superblocks(fn, profile)
    verify_program(prog, ISALevel.BASELINE)
    assert run_program(prog, inputs=inputs).return_value == golden


def test_merge_drops_branch_converging_on_trace_successor():
    """A conditional branch and the block's jump may both target the
    next trace block (the branch's then-path was optimized away).  The
    merge must drop that branch with the jump — found by Hypothesis, it
    used to survive as a dangling reference to the merged-away label,
    crashing liveness in the downstream loop-unroll pass.
    """
    src = """
    int arr[16];
    int main() {
      int v0; int it;
      v0 = 0;
      for (it = 0; it < 6; it = it + 1) {
        if ((v0 < v0) && (0 != 0)) { v0 = v0; }
        v0 = v0 + 1;
      }
      return v0;
    }
    """
    prog = compile_minic(src)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    inputs = {"arr": [0] * 16}
    profile = Profile.collect(prog, inputs=inputs)
    golden = run_program(prog, inputs=inputs).return_value
    for fn in prog.functions.values():
        form_superblocks(fn, profile)
    verify_program(prog, ISALevel.BASELINE)
    fn = prog.functions["main"]
    names = {b.name for b in fn.blocks}
    for block in fn.blocks:
        for inst in block.instructions:
            if inst.cat in (OpCategory.BRANCH, OpCategory.JUMP) \
                    and inst.target is not None:
                assert inst.target in names, \
                    f"dangling branch target {inst.target!r}"
    assert run_program(prog, inputs=inputs).return_value == golden
