"""Loop unrolling and branch combining."""

from repro.analysis.profile import Profile
from repro.emu import run_program
from repro.ir import ISALevel, Opcode, verify_program
from repro.ir.opcodes import OpCategory
from repro.lang import compile_minic
from repro.opt import normalize_basic_blocks, optimize_program
from repro.regions import (combine_branches, form_hyperblocks,
                           form_superblocks)
from repro.regions.branch_combine import BranchCombineParams
from repro.regions.unroll import (UnrollParams, choose_factor,
                                  unroll_function_loops, unroll_self_loop)

LOOP_SRC = """
int data[512];
int n;
int total;
int main() {
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 50) total = total + data[i];
    else total = total + 1;
  }
  return total;
}
"""


def _inputs():
    return {"data": [(i * 37) % 100 for i in range(300)], "n": [300]}


def _formed_loop(form):
    prog = compile_minic(LOOP_SRC)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    inputs = _inputs()
    profile = Profile.collect(prog, inputs=inputs)
    fn = prog.functions["main"]
    labels = form(fn, profile)
    return prog, fn, labels, inputs


def test_choose_factor_bounds():
    params = UnrollParams(max_factor=4, max_instructions=100,
                          max_body_size=60)
    assert choose_factor(10, params) == 4
    assert choose_factor(40, params) == 2
    assert choose_factor(61, params) == 1
    assert choose_factor(0, params) == 1


def test_unroll_superblock_loop_semantics():
    prog, fn, labels, inputs = _formed_loop(
        lambda f, p: form_superblocks(f, p))
    golden = run_program(prog, inputs=inputs).return_value
    count = unroll_function_loops(fn)
    assert count >= 1
    verify_program(prog, ISALevel.BASELINE)
    assert run_program(prog, inputs=inputs).return_value == golden


def test_unroll_hyperblock_loop_semantics():
    prog, fn, formed, inputs = _formed_loop(
        lambda f, p: form_hyperblocks(f, p))
    assert formed
    golden = run_program(prog, inputs=inputs).return_value
    count = unroll_function_loops(fn)
    assert count >= 1
    verify_program(prog, ISALevel.FULL)
    assert run_program(prog, inputs=inputs).return_value == golden


def test_unroll_renames_iteration_temporaries():
    prog, fn, formed, inputs = _formed_loop(
        lambda f, p: form_hyperblocks(f, p))
    block = fn.block(formed[0][0])
    before_regs = {r for i in block.instructions
                   for r in i.defined_regs()}
    factor = unroll_self_loop(fn, block)
    assert factor > 1
    after_regs = {r for i in block.instructions
                  for r in i.defined_regs()}
    assert len(after_regs) > len(before_regs)


def test_unroll_keeps_single_backedge():
    prog, fn, formed, inputs = _formed_loop(
        lambda f, p: form_hyperblocks(f, p))
    block = fn.block(formed[0][0])
    unroll_self_loop(fn, block)
    backedges = [i for i in block.instructions
                 if i.op is Opcode.JUMP and i.pred is None
                 and i.target == block.name]
    assert len(backedges) == 1
    assert block.instructions[-1] is backedges[0]


def test_unroll_skips_non_self_loops():
    prog = compile_minic("int main() { return 3; }")
    fn = prog.functions["main"]
    assert unroll_self_loop(fn, fn.entry) == 1


COMBINE_SRC = """
char buf[1024];
int n;
int stop_at;
int main() {
  int i; int c; int res;
  res = 0;
  i = 0;
  while (i < n) {
    c = buf[i];
    if (c == 1) { res = 1; i = n; }
    if (c == 2) { res = 2; i = n; }
    if (c == 3) { res = 3; i = n; }
    i = i + 1;
  }
  return res * 100000 + i;
}
"""


def test_branch_combining_on_rare_exits():
    data = [9] * 400
    data[371] = 2
    inputs = {"buf": data, "n": [400]}
    prog = compile_minic(COMBINE_SRC)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    profile = Profile.collect(prog, inputs=inputs)
    golden = run_program(prog, inputs=inputs).return_value
    fn = prog.functions["main"]
    formed = form_hyperblocks(fn, profile)
    assert formed
    block = fn.block(formed[0][0])
    exits_before = sum(1 for i in block.instructions
                       if i.cat is OpCategory.BRANCH)
    combined = combine_branches(fn, block, profile,
                                BranchCombineParams())
    if combined:
        exits_after = sum(1 for i in block.instructions
                          if i.cat is OpCategory.BRANCH)
        assert exits_after < exits_before
        # A recovery block re-executes the original branches.
        assert any(b.name.endswith(".recover") for b in fn.blocks)
    verify_program(prog, ISALevel.FULL)
    assert run_program(prog, inputs=inputs).return_value == golden


def test_branch_combining_never_fires_on_likely_branches():
    data = list(range(1, 5)) * 100   # exits taken constantly
    inputs = {"buf": data, "n": [40]}
    prog = compile_minic(COMBINE_SRC)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    profile = Profile.collect(prog, inputs=inputs)
    fn = prog.functions["main"]
    formed = form_hyperblocks(fn, profile)
    for label, _ in formed:
        combined = combine_branches(
            fn, fn.block(label), profile,
            BranchCombineParams(max_taken_probability=0.0001))
        assert combined == 0
