"""If-conversion edge cases beyond the paper's Figure 1."""

import pytest

from repro.emu import run_program
from repro.ir import (Function, GlobalVar, IRBuilder, Imm, Opcode,
                      Program, VReg)
from repro.ir.opcodes import OpCategory
from repro.opt.cfg_cleanup import normalize_basic_blocks
from repro.regions.ifconvert import IfConversionError, if_convert


def _program(names):
    prog = Program()
    prog.add_global(GlobalVar("g", 4, 8))
    fn = Function("main")
    prog.add_function(fn)
    for name in names:
        fn.new_block(name)
    return prog, fn


def test_loop_body_region_keeps_backedge():
    """Converting a loop body turns the backedge into the final exit."""
    prog, fn = _program(["entry", "head", "body", "exit"])
    b = IRBuilder(fn, fn.block("entry"))
    i = fn.new_vreg()
    acc = fn.new_vreg()
    b.mov_to(i, Imm(0))
    b.mov_to(acc, Imm(0))
    b.jump("head")
    b.set_block(fn.block("head"))
    b.bge(i, Imm(10), "exit")
    b.jump("body")
    b.set_block(fn.block("body"))
    na = b.add(acc, i)
    b.mov_to(acc, na)
    ni = b.add(i, Imm(1))
    b.mov_to(i, ni)
    b.jump("head")
    b.set_block(fn.block("exit"))
    b.ret(acc)
    normalize_basic_blocks(fn)
    hyper, _info = if_convert(fn, {"head", "body"}, "head")
    # The final instruction is the unpredicated backedge.
    last = hyper.instructions[-1]
    assert last.op is Opcode.JUMP and last.target == "head"
    assert last.pred is None
    assert run_program(prog).return_value == sum(range(10))


def test_conditional_exit_branch_stays_conditional():
    """A branch whose taken target is outside the region remains a
    (predicated) conditional branch — the explicit exit of Section 3.1."""
    prog, fn = _program(["entry", "inner", "cold", "join"])
    b = IRBuilder(fn, fn.block("entry"))
    v = b.load(b.global_addr("g"), Imm(0))
    b.beq(v, Imm(0), "inner")
    b.jump("join")
    b.set_block(fn.block("inner"))
    b.blt(v, Imm(0), "cold")      # exit to unselected block
    b.store(b.global_addr("g"), Imm(4), Imm(7))
    b.jump("join")
    b.set_block(fn.block("cold"))
    b.ret(Imm(999))
    b.set_block(fn.block("join"))
    out = b.load(b.global_addr("g"), Imm(4))
    b.ret(out)
    normalize_basic_blocks(fn)
    region = {"entry", "inner", "inner.n1", "join"} \
        & {blk.name for blk in fn.blocks}
    hyper, _info = if_convert(fn, region, "entry")
    exits = [i for i in hyper.instructions
             if i.cat is OpCategory.BRANCH]
    assert exits and all(e.target == "cold" for e in exits)
    for g0, expected in ((0, 7), (5, 0)):
        got = run_program(prog, inputs={"g": [g0, 0]}).return_value
        assert got == expected
    assert run_program(prog, inputs={"g": [-3, 0]}).return_value in \
        (999, 0)


def test_empty_region_block_rejected():
    prog, fn = _program(["entry", "empty"])
    b = IRBuilder(fn, fn.block("entry"))
    b.jump("empty")
    fn.block("empty").instructions = []
    with pytest.raises(IfConversionError):
        if_convert(fn, {"entry", "empty"}, "entry")


def test_unnormalized_region_rejected():
    prog, fn = _program(["entry", "tail"])
    b = IRBuilder(fn, fn.block("entry"))
    b.beq(VReg(0), Imm(0), "tail")
    b.mov(Imm(1))               # interior instruction after a branch
    b.jump("tail")
    b.set_block(fn.block("tail"))
    b.ret(Imm(0))
    with pytest.raises(IfConversionError):
        if_convert(fn, {"entry", "tail"}, "entry")


def test_nested_diamonds_convert():
    src_prog, fn = _program(
        ["entry", "outer_t", "inner_t", "inner_j", "join"])
    b = IRBuilder(fn, fn.block("entry"))
    v = b.load(b.global_addr("g"), Imm(0))
    w = b.load(b.global_addr("g"), Imm(4))
    res = fn.new_vreg()
    b.mov_to(res, Imm(0))
    b.beq(v, Imm(0), "outer_t")
    b.jump("join")
    b.set_block(fn.block("outer_t"))
    b.beq(w, Imm(0), "inner_t")
    b.jump("inner_j")
    b.set_block(fn.block("inner_t"))
    b.mov_to(res, Imm(2))
    b.jump("join")
    b.set_block(fn.block("inner_j"))
    b.mov_to(res, Imm(1))
    b.jump("join")
    b.set_block(fn.block("join"))
    b.ret(res)
    normalize_basic_blocks(fn)
    region = {"entry", "outer_t", "inner_t", "inner_j", "join"}
    if_convert(fn, region, "entry")
    assert len(fn.blocks) == 1
    for v0 in (0, 1):
        for w0 in (0, 1):
            got = run_program(src_prog,
                              inputs={"g": [v0, w0]}).return_value
            expected = 0 if v0 else (2 if w0 == 0 else 1)
            assert got == expected
