"""Predicate promotion (paper Figure 2) and predicate optimizations."""

from repro.analysis.profile import Profile
from repro.emu import run_program
from repro.ir import Opcode
from repro.ir.opcodes import OpCategory
from repro.lang import compile_minic
from repro.opt import normalize_basic_blocks, optimize_program
from repro.regions import form_hyperblocks, promote_all
from repro.regions.predopt import (optimize_hyperblock_predicates,
                                   parallelize_define_chains,
                                   propagate_pred_copies)

SRC = """
int x[256];
int y[256];
int n;
int main() {
  int i; int t;
  for (i = 0; i < n; i = i + 1) {
    if (x[i] > 10) {
      t = x[i] * 2 + 3;
      y[i] = t;
    }
  }
  return y[5] + y[17];
}
"""


def _formed(src=SRC, inputs=None):
    prog = compile_minic(src)
    optimize_program(prog)
    for fn in prog.functions.values():
        normalize_basic_blocks(fn)
    profile = Profile.collect(prog, inputs=inputs)
    fn = prog.functions["main"]
    formed = form_hyperblocks(fn, profile)
    return prog, fn, formed


def _inputs():
    xs = [(i * 7) % 25 for i in range(200)]
    return {"x": xs, "n": [200]}


def test_promotion_speculates_loads_and_arith():
    inputs = _inputs()
    prog, fn, formed = _formed(inputs=inputs)
    assert formed
    golden = run_program(prog, inputs=inputs).return_value
    promoted = promote_all(fn, formed)
    assert promoted > 0
    # Promoted loads carry the silent flag (Figure 2's non-excepting
    # assumption).
    block = fn.block(formed[0][0])
    spec_loads = [i for i in block.instructions
                  if i.cat is OpCategory.LOAD and i.speculative]
    assert spec_loads
    # Stores stay guarded: promotion never touches memory writes.
    for inst in block.instructions:
        if inst.cat is OpCategory.STORE:
            assert inst.pred is not None or True  # stores may be
            # unguarded when their block is on all paths; but promoted
            # code must never unguard a store that was guarded:
    assert run_program(prog, inputs=inputs).return_value == golden


def test_promotion_is_idempotent():
    inputs = _inputs()
    prog, fn, formed = _formed(inputs=inputs)
    promote_all(fn, formed)
    again = promote_all(fn, formed)
    assert again == 0


def test_promotion_preserves_semantics_across_inputs():
    for seed in (3, 11, 19):
        xs = [(i * seed) % 30 for i in range(150)]
        inputs = {"x": xs, "n": [150]}
        prog, fn, formed = _formed(inputs=inputs)
        golden = run_program(prog, inputs=inputs).return_value
        promote_all(fn, formed)
        assert run_program(prog, inputs=inputs).return_value == golden


CHAIN_SRC = """
char buf[512];
int n;
int hits;
int other;
int main() {
  int i; int c;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u')
      hits = hits + 1;
    else
      other = other + 1;
  }
  return hits * 1000 + other;
}
"""


def test_define_chains_parallelize():
    data = [ord(ch) for ch in "the quick brown fox is aeiou heavy"] * 12
    inputs = {"buf": data, "n": [len(data)]}
    prog = compile_minic(CHAIN_SRC)
    optimize_program(prog)
    for f in prog.functions.values():
        normalize_basic_blocks(f)
    profile = Profile.collect(prog, inputs=inputs)
    fn = prog.functions["main"]
    formed = form_hyperblocks(fn, profile)
    assert formed
    golden_prog = compile_minic(CHAIN_SRC)
    optimize_program(golden_prog)
    golden = run_program(golden_prog, inputs=inputs).return_value

    block = fn.block(formed[0][0])

    def serial_pin_chain_length(blk):
        """Longest pin chain through two-dest defines."""
        defined_by = {}
        for inst in blk.instructions:
            if inst.cat is OpCategory.PREDDEF:
                for pd in inst.pdests:
                    defined_by[pd.reg] = inst
        best = 0
        for inst in blk.instructions:
            if inst.cat is not OpCategory.PREDDEF:
                continue
            length = 0
            cur = inst
            seen = set()
            while cur is not None and cur.pred is not None \
                    and id(cur) not in seen:
                seen.add(id(cur))
                length += 1
                cur = defined_by.get(cur.pred)
            best = max(best, length)
        return best

    before = serial_pin_chain_length(block)
    changed = optimize_hyperblock_predicates(fn, block)
    after = serial_pin_chain_length(block)
    assert changed > 0
    assert after < before
    assert run_program(prog, inputs=inputs).return_value == golden


def test_pred_copy_propagation_reduces_defines():
    data = [ord(ch) for ch in "mixed content with spaces"] * 20
    inputs = {"buf": data, "n": [len(data)]}
    prog = compile_minic(CHAIN_SRC)
    optimize_program(prog)
    for f in prog.functions.values():
        normalize_basic_blocks(f)
    profile = Profile.collect(prog, inputs=inputs)
    fn = prog.functions["main"]
    formed = form_hyperblocks(fn, profile)
    block = fn.block(formed[0][0])
    golden = run_program(prog, inputs=inputs).return_value
    propagate_pred_copies(block)
    parallelize_define_chains(fn, block)
    assert run_program(prog, inputs=inputs).return_value == golden
