"""Performance observability: byte accounting, regression comparison,
timing trajectories, per-stage profiling."""

import json

from repro.engine.keys import stable_digest
from repro.engine.metrics import (PipelineMetrics, compare_stage_walltimes)
from repro.engine.profiling import StageProfiler
from repro.engine.store import ArtifactStore

KEY = stable_digest("perf", "inputs")


# ----- byte accounting -----------------------------------------------------

def test_store_counts_bytes_written_and_read(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("stats", KEY, {"cycles": 42})
    written = store.metrics.cache["stats"].bytes_written
    assert written > 0
    store.get("stats", KEY)
    assert store.metrics.cache["stats"].bytes_read == written


def test_store_stats_reports_bytes_per_kind(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("stats", KEY, {"cycles": 42})
    store.put("execution", KEY, list(range(500)))
    stats = store.stats()
    assert stats.bytes_by_kind["stats"] > 0
    assert stats.bytes_by_kind["execution"] > stats.bytes_by_kind["stats"]
    assert stats.total_bytes == sum(stats.bytes_by_kind.values())
    assert "KiB" in stats.render()


def test_metrics_merge_and_json_carry_byte_counters(tmp_path):
    parent = PipelineMetrics()
    worker = PipelineMetrics()
    worker.record_hit("stats", 100)
    worker.record_write("stats", 250)
    parent.merge_dict(worker.to_dict())
    assert parent.cache["stats"].bytes_read == 100
    assert parent.cache["stats"].bytes_written == 250
    assert parent.to_dict()["cache"]["stats"]["bytes_written"] == 250


# ----- regression comparison ----------------------------------------------

def _bench(walls: dict[str, float], invocations: int = 10) -> dict:
    return {"stages": {name: {"wall_seconds": wall,
                              "invocations": invocations}
                       for name, wall in walls.items()}}


def test_compare_flags_only_regressed_stages():
    baseline = _bench({"emulate": 1.0, "simulate": 1.0})
    current = _bench({"emulate": 1.5, "simulate": 1.1})
    regressions = compare_stage_walltimes(current, baseline)
    assert len(regressions) == 1
    assert regressions[0].startswith("emulate:")


def test_compare_normalizes_per_invocation():
    # Twice the wall time for twice the work is not a regression.
    baseline = _bench({"emulate": 1.0}, invocations=10)
    current = _bench({"emulate": 2.0}, invocations=20)
    assert compare_stage_walltimes(current, baseline) == []


def test_compare_ignores_noise_floor_stages():
    baseline = _bench({"frontend": 0.001})
    current = _bench({"frontend": 0.010})
    assert compare_stage_walltimes(current, baseline) == []


def test_compare_tolerates_missing_stages():
    baseline = _bench({"emulate": 1.0, "bespoke": 1.0})
    assert compare_stage_walltimes(_bench({"emulate": 1.0}),
                                   baseline) == []


# ----- timing trajectory ---------------------------------------------------

def test_write_json_appends_dated_history(tmp_path):
    path = tmp_path / "bench.json"
    metrics = PipelineMetrics()
    with metrics.timer("emulate"):
        pass
    metrics.write_json(str(path))
    metrics.write_json(str(path))
    data = json.loads(path.read_text())
    assert len(data["history"]) == 2
    for entry in data["history"]:
        assert "date" in entry
        assert "emulate" in entry["stages"]


def test_write_json_survives_pre_history_baseline(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"stages": {}}))
    metrics = PipelineMetrics()
    metrics.write_json(str(path))
    assert len(json.loads(path.read_text())["history"]) == 1


# ----- per-stage profiling -------------------------------------------------

def test_stage_profiler_writes_pstats_and_summary(tmp_path):
    metrics = PipelineMetrics()
    metrics.profiler = StageProfiler(top=5)
    with metrics.timer("emulate"):
        stable_digest("some", "work")
    with metrics.timer("simulate"):
        stable_digest("other", "work")
    written = metrics.profiler.write(tmp_path)
    names = {p.rsplit("/", 1)[-1] for p in written}
    assert names == {"profile_emulate.pstats", "profile_simulate.pstats",
                     "profile_summary.txt"}
    summary = (tmp_path / "profile_summary.txt").read_text()
    assert "stage: emulate" in summary and "stage: simulate" in summary
    assert "stable_digest" in summary


def test_profiler_accumulates_across_invocations(tmp_path):
    metrics = PipelineMetrics()
    metrics.profiler = StageProfiler()
    for _ in range(3):
        with metrics.timer("emulate"):
            stable_digest("x")
    assert metrics.profiler.stages == ["emulate"]
    assert metrics.stages["emulate"].invocations == 3
