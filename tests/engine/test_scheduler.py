"""DAG scheduler: ordering, failure containment, crash recovery."""

import pytest

from repro.engine.scheduler import Job, execute_jobs
from tests.engine import jobhelpers


def test_serial_respects_dependency_order():
    order = []
    jobs = [
        Job("c", lambda: order.append("c"), deps=("a", "b")),
        Job("b", lambda: order.append("b"), deps=("a",)),
        Job("a", lambda: order.append("a")),
    ]
    outcome = execute_jobs(jobs, max_workers=1)
    assert outcome.ok
    assert order.index("a") < order.index("b") < order.index("c")


def test_results_are_keyed_by_job_id():
    jobs = [Job("x", jobhelpers.ok, args=(7,)),
            Job("y", jobhelpers.double, args=(7,), deps=("x",))]
    outcome = execute_jobs(jobs)
    assert outcome.results == {"x": 7, "y": 14}


def test_duplicate_id_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        execute_jobs([Job("a", jobhelpers.ok), Job("a", jobhelpers.ok)])


def test_unknown_dependency_rejected():
    with pytest.raises(ValueError, match="unknown job"):
        execute_jobs([Job("a", jobhelpers.ok, deps=("ghost",))])


def test_cycle_rejected():
    jobs = [Job("a", jobhelpers.ok, deps=("b",)),
            Job("b", jobhelpers.ok, deps=("a",))]
    with pytest.raises(ValueError, match="cycle"):
        execute_jobs(jobs)


def test_failure_skips_transitive_dependents():
    jobs = [
        Job("root", jobhelpers.fail, args=("bad input",),
            workload="wc", stage="compile+emulate"),
        Job("mid", jobhelpers.ok, args=(1,), deps=("root",)),
        Job("leaf", jobhelpers.ok, args=(2,), deps=("mid",)),
        Job("other", jobhelpers.ok, args=(3,)),
    ]
    outcome = execute_jobs(jobs, max_workers=1)
    assert not outcome.ok
    assert outcome.results == {"other": 3}
    [failure] = outcome.failures
    assert failure.job_id == "root"
    assert failure.workload == "wc"
    assert failure.error_type == "CompileError"
    assert not failure.crashed
    assert failure.exception is not None
    # Skips record the root-cause failure, even for indirect dependents.
    assert outcome.skipped == {"mid": "root", "leaf": "root"}


def test_pool_runs_jobs_and_collects_results(tmp_path):
    log = tmp_path / "order.log"
    jobs = [Job("b", jobhelpers.record, args=(str(log), "b"),
                deps=("a",)),
            Job("a", jobhelpers.record, args=(str(log), "a")),
            Job("c", jobhelpers.record, args=(str(log), "c"))]
    outcome = execute_jobs(jobs, max_workers=2)
    assert outcome.ok
    assert outcome.results == {"a": "a", "b": "b", "c": "c"}
    lines = log.read_text().split()
    assert lines.index("a") < lines.index("b")


def test_pool_typed_failure_propagates_and_skips():
    jobs = [Job("bad", jobhelpers.fail, workload="cmp", stage="simulate"),
            Job("after", jobhelpers.ok, args=(1,), deps=("bad",)),
            Job("fine", jobhelpers.ok, args=(2,))]
    outcome = execute_jobs(jobs, max_workers=2)
    assert outcome.results == {"fine": 2}
    [failure] = outcome.failures
    assert failure.error_type == "CompileError"
    assert "boom" in failure.message
    # The exception pickled back across the pool intact.
    assert failure.exception is not None
    assert outcome.skipped == {"after": "bad"}


def test_pool_contains_worker_crash():
    jobs = [Job("killer", jobhelpers.crash, workload="li",
                stage="compile+emulate"),
            Job("victim", jobhelpers.ok, args=(5,), deps=("killer",)),
            Job("bystander", jobhelpers.ok, args=(6,))]
    outcome = execute_jobs(jobs, max_workers=2)
    # The innocent job survives the pool breakage (re-queued and re-run).
    assert outcome.results["bystander"] == 6
    crash = next(f for f in outcome.failures if f.job_id == "killer")
    assert crash.crashed
    assert crash.error_type == "WorkerCrash"
    assert crash.exception is None
    assert outcome.skipped == {"victim": "killer"}
