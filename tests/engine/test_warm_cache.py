"""Acceptance: a warm artifact store serves figure runs compute-free.

The ISSUE's criterion: the second consecutive figure run against a warm
cache performs ZERO compilations and emulations — verified through the
hit/miss counters — and produces identical cycle counts, both serially
and through the process pool.
"""

import pytest

from repro.engine.metrics import STAGES
from repro.experiments.runner import ExperimentSuite
from repro.machine.descriptor import fig8_machine
from repro.toolchain import Model
from repro.workloads import get_workload

SCALE = 0.2


def _suite(cache_dir, jobs=1):
    return ExperimentSuite(workloads=[get_workload("wc"),
                                      get_workload("cmp")],
                           scale=SCALE, cache_dir=str(cache_dir),
                           jobs=jobs)


@pytest.fixture(scope="module")
def cold_run(tmp_path_factory):
    """One cold serial figure-8 run; returns (cache_dir, table)."""
    cache_dir = tmp_path_factory.mktemp("artifact-cache")
    suite = _suite(cache_dir)
    table = suite.figure8()
    assert suite.metrics.cache_misses > 0, "cold run must miss"
    assert suite.metrics.stages["compile"].invocations > 0
    return cache_dir, table


def _assert_compute_free(suite):
    assert suite.metrics.cache_misses == 0
    assert suite.metrics.hit_rate == 1.0
    for stage in STAGES:
        assert suite.metrics.stages[stage].invocations == 0, \
            f"warm run recomputed stage {stage}"


def test_warm_serial_run_is_compute_free_and_identical(cold_run):
    cache_dir, table = cold_run
    warm = _suite(cache_dir)
    assert warm.figure8() == table
    _assert_compute_free(warm)


def test_warm_parallel_run_is_compute_free_and_identical(cold_run):
    cache_dir, table = cold_run
    warm = _suite(cache_dir, jobs=4)
    assert warm.figure8() == table
    _assert_compute_free(warm)
    # Every DAG node was store-resident: nothing was even dispatched.
    assert warm.metrics.jobs_dispatched == 0


def test_single_run_is_served_from_store(cold_run):
    cache_dir, _table = cold_run
    warm = _suite(cache_dir)
    run = warm.run("wc", Model.CMOV, fig8_machine())
    assert run.cycles > 0
    _assert_compute_free(warm)
    # Exactly one artifact load: the RunSummary itself.
    assert warm.metrics.cache_hits == 1


def test_cold_parallel_run_matches_serial(cold_run, tmp_path):
    _cache_dir, table = cold_run
    parallel = ExperimentSuite(workloads=[get_workload("wc")],
                               scale=SCALE, cache_dir=str(tmp_path),
                               jobs=2)
    parallel_table = parallel.figure8()
    assert parallel_table["wc"] == table["wc"]
    assert parallel.metrics.jobs_dispatched > 0


def test_scale_change_cold_starts_the_cache(cold_run):
    cache_dir, _table = cold_run
    other = ExperimentSuite(workloads=[get_workload("wc")], scale=0.1,
                            cache_dir=str(cache_dir))
    other.run("wc", Model.SUPERBLOCK, fig8_machine())
    assert other.metrics.cache_misses > 0
