"""Artifact store: atomic persistence, verification, maintenance."""

import pytest

from repro.engine.keys import SCHEMA_VERSION, stable_digest
from repro.engine.store import ArtifactStore

KEY = stable_digest("some", "inputs")


def test_put_get_round_trip_counts_hit(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("stats", KEY, {"cycles": 42})
    assert store.get("stats", KEY) == {"cycles": 42}
    assert store.metrics.cache["stats"].hits == 1
    assert store.metrics.cache["stats"].misses == 0


def test_missing_artifact_is_a_counted_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.get("stats", KEY) is None
    assert store.metrics.cache["stats"].misses == 1


def test_contains_does_not_touch_counters(tmp_path):
    store = ArtifactStore(tmp_path)
    assert not store.contains("stats", KEY)
    store.put("stats", KEY, 1)
    assert store.contains("stats", KEY)
    assert store.metrics.cache_hits == store.metrics.cache_misses == 0


def test_unknown_kind_rejected(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError):
        store.put("weights", KEY, 1)


def test_corrupted_artifact_is_quarantined_and_missed(tmp_path):
    """Corruption becomes quarantine + miss, never a served value."""
    store = ArtifactStore(tmp_path)
    store.put("execution", KEY, list(range(1000)))
    path = store._path("execution", KEY)
    blob = bytearray(path.read_bytes())
    blob[-3] ^= 0x40
    path.write_bytes(bytes(blob))
    assert store.get("execution", KEY) is None
    assert store.metrics.cache["execution"].misses == 1
    assert store.metrics.quarantined_artifacts == 1
    # The corrupt bytes moved aside (with a reason sidecar), the
    # lookup path is free for a recompute to rewrite.
    assert not path.exists()
    quarantined = list((tmp_path / "quarantine").rglob("*.art"))
    assert len(quarantined) == 1
    # A rewrite serves cleanly again.
    store.put("execution", KEY, list(range(1000)))
    assert store.get("execution", KEY) == list(range(1000))


def test_put_leaves_no_temp_files(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("stats", KEY, {"cycles": 42})
    leftovers = [p for p in tmp_path.rglob("*") if p.is_file()
                 and not p.name.endswith(".art")]
    assert leftovers == []


def test_stats_inventory_and_stale_versions(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("stats", KEY, 1)
    store.put("compiled", stable_digest("other"), 2)
    (tmp_path / "v0" / "stats").mkdir(parents=True)
    inventory = store.stats()
    assert inventory.entries == 2
    assert inventory.by_kind == {"compiled": 1, "stats": 1}
    assert inventory.total_bytes > 0
    assert inventory.stale_versions == ["v0"]
    rendered = inventory.render()
    assert f"v{SCHEMA_VERSION}" in rendered and "v0" in rendered


def test_clear_removes_all_versions(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("stats", KEY, 1)
    assert store.clear() == 1
    assert store.stats().entries == 0
    assert store.get("stats", KEY) is None


def test_schema_bump_orphans_old_artifacts(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("stats", KEY, 1)
    # Relocate the version dir, as a schema bump would.
    bumped = ArtifactStore(tmp_path)
    bumped.version_dir = tmp_path / f"v{SCHEMA_VERSION + 1}"
    assert bumped.get("stats", KEY) is None
    assert bumped.stats().stale_versions == [f"v{SCHEMA_VERSION}"]
