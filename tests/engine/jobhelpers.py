"""Module-level job functions for scheduler tests.

The process pool pickles job functions by reference, so anything a
pool-path test submits must live at module scope.  ``record`` appends to
a file because pool workers do not share memory with the test process.
"""

import os

from repro.robustness.errors import CompileError


def ok(value):
    return value


def double(value):
    return 2 * value


def fail(message="boom"):
    raise CompileError(message, pass_name="test-pass")


def crash():
    os._exit(1)


def record(path, tag):
    with open(path, "a") as handle:
        handle.write(f"{tag}\n")
    return tag
