"""Module-level job functions for scheduler tests.

The process pool pickles job functions by reference, so anything a
pool-path test submits must live at module scope.  ``record`` appends to
a file because pool workers do not share memory with the test process.
"""

import os

from repro.robustness.errors import CompileError, TraceIntegrityError


def ok(value):
    return value


def flaky_transient(counter_path, succeed_on):
    """Raise a transient error until attempt ``succeed_on`` (file-counted,
    so attempts are visible across pool workers)."""
    try:
        attempt = int(open(counter_path).read())
    except (OSError, ValueError):
        attempt = 0
    attempt += 1
    with open(counter_path, "w") as handle:
        handle.write(str(attempt))
    if attempt < succeed_on:
        raise TraceIntegrityError(f"transient corruption, attempt {attempt}")
    return attempt


def crash_once(sentinel_path):
    """os._exit the worker on the first call, succeed afterwards."""
    if not os.path.exists(sentinel_path):
        with open(sentinel_path, "w") as handle:
            handle.write("crashed\n")
        os._exit(1)
    return "survived"


def double(value):
    return 2 * value


def fail(message="boom"):
    raise CompileError(message, pass_name="test-pass")


def crash():
    os._exit(1)


def record(path, tag):
    with open(path, "a") as handle:
        handle.write(f"{tag}\n")
    return tag
