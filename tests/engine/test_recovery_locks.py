"""Advisory file locks: mutual exclusion, stale recovery, and the
two-process concurrent-writer guarantee."""

import json
import multiprocessing
import os
import time

import pytest

from repro.engine.keys import stable_digest
from repro.engine.recovery.locks import FileLock
from repro.engine.serialize import unpack
from repro.engine.store import ArtifactStore
from repro.robustness.errors import ArtifactLockTimeout


def test_acquire_release_round_trip(tmp_path):
    lock = FileLock(tmp_path / "a.lock")
    lock.acquire()
    assert lock.held and lock.path.exists()
    holder = json.loads(lock.path.read_bytes())
    assert holder["pid"] == os.getpid()
    lock.release()
    assert not lock.held and not lock.path.exists()


def test_second_acquirer_times_out_against_live_holder(tmp_path):
    path = tmp_path / "a.lock"
    holder = FileLock(path)
    holder.acquire()
    waiter = FileLock(path, timeout=0.05, poll_interval=0.01)
    with pytest.raises(ArtifactLockTimeout) as exc:
        waiter.acquire()
    assert exc.value.exit_code == 17
    holder.release()


def test_expired_lease_is_broken(tmp_path):
    path = tmp_path / "a.lock"
    # A holder whose lease expired long ago (pid faked dead too).
    path.write_text(json.dumps({"pid": 2 ** 22 + os.getpid(),
                                "token": "x",
                                "expires": time.time() - 60}))
    lock = FileLock(path, timeout=1.0, poll_interval=0.01)
    lock.acquire()
    assert lock.held
    lock.release()


def test_dead_holder_pid_is_broken_before_lease_expiry(tmp_path):
    path = tmp_path / "a.lock"
    dead = multiprocessing.Process(target=time.sleep, args=(0,))
    dead.start()
    dead.join()
    path.write_text(json.dumps({"pid": dead.pid, "token": "x",
                                "expires": time.time() + 3600}))
    lock = FileLock(path, timeout=1.0, poll_interval=0.01)
    lock.acquire()
    assert lock.held
    lock.release()


def test_release_without_token_is_a_noop(tmp_path):
    path = tmp_path / "a.lock"
    owner = FileLock(path)
    owner.acquire()
    bystander = FileLock(path)
    bystander.release()          # never acquired: must not unlink
    assert path.exists()
    owner.release()


def test_broken_owner_cannot_release_successor(tmp_path):
    path = tmp_path / "a.lock"
    owner = FileLock(path, lease_seconds=0.0)   # instantly stale
    owner.acquire()
    successor = FileLock(path, timeout=1.0, poll_interval=0.01)
    successor.acquire()          # breaks the stale lock, takes over
    owner.release()              # token mismatch: must not unlink
    assert path.exists()
    successor.release()


def test_context_manager(tmp_path):
    with FileLock(tmp_path / "a.lock") as lock:
        assert lock.held
    assert not lock.held


# ----- two processes, one artifact key (the satellite guarantee) ------------

def _hammer_store(root: str, key: str, tag: int, rounds: int) -> None:
    store = ArtifactStore(root)
    for n in range(rounds):
        store.put("stats", key, {"writer": tag, "round": n,
                                 "payload": list(range(200))})


def test_concurrent_writers_one_valid_envelope(tmp_path):
    """Two processes racing on one key must leave exactly one valid,
    fully-verified envelope — no torn file, no stray tmp debris."""
    key = stable_digest("concurrent", "writers")
    procs = [multiprocessing.Process(
        target=_hammer_store, args=(str(tmp_path), key, tag, 25))
        for tag in (1, 2)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    store = ArtifactStore(tmp_path)
    art_files = [p for p in tmp_path.rglob("*.art")
                 if "quarantine" not in p.parts]
    assert len(art_files) == 1
    # The surviving envelope verifies end-to-end (digest included).
    payload = unpack(art_files[0].read_bytes(), expect_kind="stats")
    assert payload["writer"] in (1, 2) and payload["round"] == 24
    assert store.get("stats", key) == payload
    debris = [p for p in tmp_path.rglob("*")
              if p.is_file() and (".tmp" in p.name
                                  or p.name.endswith(".lock"))]
    assert debris == []
