"""Retry policy: transient classification, deterministic backoff, and
the scheduler actually retrying."""

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.engine.metrics import PipelineMetrics
from repro.engine.recovery.retry import (NO_RETRY, RetryPolicy,
                                         TRANSIENT_TYPE_NAMES,
                                         is_transient)
from repro.engine.scheduler import Job, execute_jobs
from repro.robustness.errors import (ArtifactLockTimeout, CompileError,
                                     EmulationTimeout,
                                     ModelDivergenceError,
                                     PassVerificationError,
                                     TraceIntegrityError)
from tests.engine import jobhelpers


@pytest.mark.parametrize("exc", [
    BrokenProcessPool("pool died"),
    TraceIntegrityError("corrupt artifact"),
    EmulationTimeout("over budget"),
    ArtifactLockTimeout("lock contention"),
    TimeoutError("slow"),
    OSError(28, "No space left on device"),
])
def test_transient_failures(exc):
    assert is_transient(exc)


@pytest.mark.parametrize("exc", [
    CompileError("bad program", pass_name="p"),
    PassVerificationError("verifier", pass_name="p"),
    ModelDivergenceError("models disagree"),
    ValueError("misuse"),
])
def test_permanent_failures(exc):
    assert not is_transient(exc)


def test_worker_crash_name_is_transient():
    assert "WorkerCrash" in TRANSIENT_TYPE_NAMES
    assert "CompileError" not in TRANSIENT_TYPE_NAMES


def test_backoff_is_deterministic_and_capped():
    policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5, jitter=0.25)
    first = [policy.backoff("task-a", n) for n in range(1, 8)]
    second = [policy.backoff("task-a", n) for n in range(1, 8)]
    assert first == second                      # seeded jitter
    assert all(b <= 0.5 * 1.25 for b in first)  # capped (+jitter)
    assert first != [policy.backoff("task-b", n) for n in range(1, 8)]


def test_backoff_grows_exponentially_before_the_cap():
    policy = RetryPolicy(backoff_base=0.1, backoff_cap=100.0, jitter=0.0)
    assert policy.backoff("t", 1) == pytest.approx(0.1)
    assert policy.backoff("t", 2) == pytest.approx(0.2)
    assert policy.backoff("t", 3) == pytest.approx(0.4)


def test_should_retry_honors_attempt_budget():
    policy = RetryPolicy(max_attempts=3)
    exc = EmulationTimeout("slow")
    assert policy.should_retry(exc, 1) and policy.should_retry(exc, 2)
    assert not policy.should_retry(exc, 3)
    assert not policy.should_retry(CompileError("no", pass_name="p"), 1)
    assert not NO_RETRY.should_retry(exc, 1)


# ----- the scheduler actually retrying --------------------------------------

def test_serial_retry_recovers_from_transient_failure(tmp_path):
    counter = tmp_path / "attempts"
    jobs = [Job(job_id="flaky", fn=jobhelpers.flaky_transient,
                args=(str(counter), 2))]
    metrics = PipelineMetrics()
    policy = RetryPolicy(max_attempts=3, backoff_base=0.001,
                         backoff_cap=0.01)
    outcome = execute_jobs(jobs, max_workers=1, retry=policy,
                           metrics=metrics)
    assert outcome.ok
    assert outcome.results["flaky"] == 2
    assert metrics.task_retries == 1
    assert metrics.retry_backoff_seconds > 0.0


def test_serial_retry_exhaustion_records_final_failure(tmp_path):
    counter = tmp_path / "attempts"
    jobs = [Job(job_id="doomed", fn=jobhelpers.flaky_transient,
                args=(str(counter), 99))]
    policy = RetryPolicy(max_attempts=2, backoff_base=0.001,
                         backoff_cap=0.01)
    outcome = execute_jobs(jobs, max_workers=1, retry=policy)
    assert len(outcome.failures) == 1
    failure = outcome.failures[0]
    assert failure.transient and failure.attempts == 2
    assert failure.error_type == "TraceIntegrityError"


def test_serial_permanent_failure_is_not_retried(tmp_path):
    jobs = [Job(job_id="perm", fn=jobhelpers.fail)]
    metrics = PipelineMetrics()
    outcome = execute_jobs(jobs, max_workers=1, metrics=metrics)
    assert metrics.task_retries == 0
    assert outcome.failures[0].attempts == 1
    assert not outcome.failures[0].transient


def test_pool_retry_recovers_from_transient_failure(tmp_path):
    counter = tmp_path / "attempts"
    jobs = [Job(job_id="flaky", fn=jobhelpers.flaky_transient,
                args=(str(counter), 2)),
            Job(job_id="steady", fn=jobhelpers.ok, args=(7,))]
    metrics = PipelineMetrics()
    policy = RetryPolicy(max_attempts=3, backoff_base=0.001,
                         backoff_cap=0.01)
    outcome = execute_jobs(jobs, max_workers=2, retry=policy,
                           metrics=metrics)
    assert outcome.ok
    assert outcome.results == {"flaky": 2, "steady": 7}
    assert metrics.task_retries >= 1


def test_pool_crash_rebuilds_and_recovers(tmp_path):
    sentinel = tmp_path / "crashed.sentinel"
    jobs = [Job(job_id="crasher", fn=jobhelpers.crash_once,
                args=(str(sentinel),)),
            Job(job_id="steady", fn=jobhelpers.ok, args=(7,))]
    metrics = PipelineMetrics()
    outcome = execute_jobs(jobs, max_workers=2, metrics=metrics)
    assert outcome.ok
    assert outcome.results["crasher"] == "survived"
    assert metrics.pool_rebuilds >= 1


def test_on_complete_fires_per_success():
    seen = []
    jobs = [Job(job_id="a", fn=jobhelpers.ok, args=(1,)),
            Job(job_id="b", fn=jobhelpers.fail, deps=("a",)),
            Job(job_id="c", fn=jobhelpers.ok, args=(3,), deps=("b",))]
    outcome = execute_jobs(
        jobs, max_workers=1,
        on_complete=lambda job, result: seen.append((job.job_id, result)))
    assert seen == [("a", 1)]
    assert "c" in outcome.skipped
