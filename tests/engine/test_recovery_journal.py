"""Run journal: durable append, torn-line replay, digest verification."""

import json

import pytest

from repro.engine.keys import stable_digest
from repro.engine.recovery.journal import (JournalState, RunJournal,
                                           journal_path, new_run_id,
                                           replay_journal,
                                           verify_completed)
from repro.engine.store import ArtifactStore
from repro.robustness.errors import ReproError


def test_run_id_format_is_sortable_and_unique():
    a, b = new_run_id(), new_run_id()
    assert a.startswith("R") and b.startswith("R")
    assert a != b
    # RYYYYmmdd-HHMMSS-xxxxxxxx
    stamp, suffix = a[1:].rsplit("-", 1)
    assert len(stamp) == 15 and len(suffix) == 8


def test_create_replay_round_trip(tmp_path):
    journal = RunJournal.create(tmp_path, meta={"scale": 0.5})
    journal.task_start("t1")
    journal.task_finish("t1", [("stats", "k" * 64, "s" * 64)])
    journal.task_start("t2", attempt=2)
    journal.task_fail("t2", "CompileError", "boom", transient=False,
                      attempt=2)
    journal.run_finish(ok=False)
    journal.close()

    state = replay_journal(journal_path(tmp_path, journal.run_id))
    assert state.run_id == journal.run_id
    assert state.meta == {"scale": 0.5}
    assert state.completed == {"t1": [("stats", "k" * 64, "s" * 64)]}
    assert state.failed["t2"]["error"] == "CompileError"
    assert state.attempts == {"t1": 1, "t2": 2}
    assert state.torn_lines == 0


def test_every_record_is_one_json_line(tmp_path):
    journal = RunJournal.create(tmp_path)
    journal.task_start("t1")
    journal.task_finish("t1", [])
    journal.close()
    lines = journal_path(tmp_path, journal.run_id).read_text() \
        .splitlines()
    assert len(lines) == 3  # run-start + task-start + task-finish
    assert all(json.loads(line)["type"] for line in lines)


def test_torn_final_line_is_tolerated(tmp_path):
    journal = RunJournal.create(tmp_path)
    journal.task_finish("t1", [("stats", "k" * 64, "s" * 64)])
    journal.close()
    path = journal_path(tmp_path, journal.run_id)
    with open(path, "a") as handle:
        handle.write('{"type":"task-finish","task":"t2","arti')
    state = replay_journal(path)
    assert state.torn_lines == 1
    assert "t1" in state.completed and "t2" not in state.completed


def test_replay_unknown_run_id_raises_typed(tmp_path):
    with pytest.raises(ReproError, match="unknown run id"):
        replay_journal(journal_path(tmp_path, "R00000000-000000-dead"))


def test_task_fail_then_finish_counts_as_completed(tmp_path):
    journal = RunJournal.create(tmp_path)
    journal.task_fail("t1", "EmulationTimeout", "slow", transient=True)
    journal.task_finish("t1", [])
    journal.close()
    state = replay_journal(journal_path(tmp_path, journal.run_id))
    assert "t1" in state.completed and "t1" not in state.failed


def test_fail_messages_are_truncated(tmp_path):
    journal = RunJournal.create(tmp_path)
    journal.task_fail("t1", "OSError", "x" * 5000, transient=True)
    journal.close()
    state = replay_journal(journal_path(tmp_path, journal.run_id))
    assert len(state.failed["t1"]["message"]) == 500


def test_resume_appends_resume_record(tmp_path):
    journal = RunJournal.create(tmp_path)
    run_id = journal.run_id
    journal.task_finish("t1", [])
    journal.close()
    resumed, state = RunJournal.resume(tmp_path, run_id)
    resumed.close()
    assert "t1" in state.completed
    raw = journal_path(tmp_path, run_id).read_text()
    assert '"type":"run-resume"' in raw.replace(" ", "")


def test_verify_completed_accepts_matching_digests(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    key = stable_digest("resume", "ok")
    store.put("stats", key, {"cycles": 7})
    sha = store.digest_of("stats", key)
    state = JournalState(run_id="R", completed={
        "t1": [("stats", key, sha)]})
    verified, invalid = verify_completed(state, store)
    assert verified == {"t1"} and not invalid


def test_verify_completed_quarantines_mismatches(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    key = stable_digest("resume", "tampered")
    store.put("stats", key, {"cycles": 7})
    state = JournalState(run_id="R", completed={
        "t1": [("stats", key, "0" * 64)],           # wrong digest
        "t2": [("stats", "f" * 64, "0" * 64)]})     # missing artifact
    verified, invalid = verify_completed(state, store)
    assert not verified
    assert "digest mismatch" in invalid["t1"]
    assert "missing" in invalid["t2"]
    # The mismatched bytes were moved aside, not trusted.
    assert not store.contains("stats", key)
    assert store.metrics.quarantined_artifacts == 1
