"""Store fsck: verify, report, quarantine, reclaim debris."""

import json
import time

from repro.engine.keys import stable_digest
from repro.engine.recovery.fsck import fsck_store
from repro.engine.store import ArtifactStore

KEY = stable_digest("fsck", "subject")


def _store_with(tmp_path, n=3):
    store = ArtifactStore(tmp_path)
    for i in range(n):
        store.put("stats", stable_digest("fsck", str(i)), {"i": i})
    return store


def test_clean_store_scans_clean(tmp_path):
    store = _store_with(tmp_path)
    report = fsck_store(store)
    assert report.clean and report.scanned == 3
    assert report.ok_by_kind == {"stats": 3}
    assert "verdict        : clean" in report.render()


def test_empty_store_is_clean(tmp_path):
    report = fsck_store(ArtifactStore(tmp_path))
    assert report.clean and report.scanned == 0


def test_corrupt_artifact_reported_without_repair(tmp_path):
    store = _store_with(tmp_path, n=2)
    store.put("execution", KEY, list(range(100)))
    path = store._path("execution", KEY)
    blob = bytearray(path.read_bytes())
    blob[-2] ^= 0xFF
    path.write_bytes(bytes(blob))
    report = fsck_store(store, repair=False)
    assert report.corrupt == 1 and not report.clean
    assert report.issues[0].action == "reported"
    assert path.exists()  # report-only never moves bytes
    assert "CORRUPT" in report.render()


def test_repair_quarantines_corrupt_artifacts(tmp_path):
    store = _store_with(tmp_path, n=2)
    store.put("execution", KEY, list(range(100)))
    path = store._path("execution", KEY)
    path.write_bytes(path.read_bytes()[:10])  # truncated envelope
    report = fsck_store(store, repair=True)
    assert report.corrupt == 1
    assert report.issues[0].action == "quarantined"
    assert not path.exists()
    moved = list(store.quarantine_dir.rglob("*.art"))
    assert len(moved) == 1
    assert fsck_store(store).clean  # the store is healthy again


def test_stale_tmp_files_counted_and_removed(tmp_path):
    store = _store_with(tmp_path, n=1)
    stale = store.version_dir / "stats" / ".dead.art.1234.tmp"
    stale.parent.mkdir(parents=True, exist_ok=True)
    stale.write_bytes(b"half a write")
    assert fsck_store(store).stale_tmp == 1
    assert fsck_store(store, repair=True).stale_tmp == 1
    assert not stale.exists()


def test_expired_locks_removed_live_locks_kept(tmp_path):
    store = _store_with(tmp_path, n=1)
    lock_dir = store.version_dir / "stats"
    expired = lock_dir / "a.art.lock"
    expired.write_text(json.dumps({"pid": 1, "token": "x",
                                   "expires": time.time() - 60}))
    live = lock_dir / "b.art.lock"
    live.write_text(json.dumps({"pid": 1, "token": "y",
                                "expires": time.time() + 3600}))
    report = fsck_store(store, repair=True)
    assert report.stale_locks == 1
    assert not expired.exists() and live.exists()


def test_unexpected_file_is_flagged(tmp_path):
    store = _store_with(tmp_path, n=1)
    stray = store.version_dir / "stats" / "notes.txt"
    stray.write_text("what is this doing here")
    report = fsck_store(store)
    assert not report.clean
    assert any("unexpected" in i.problem for i in report.issues)


def test_quarantine_preserved_across_clear(tmp_path):
    """`cache clear` reclaims artifacts but keeps quarantined evidence."""
    store = _store_with(tmp_path, n=2)
    path = store._path("stats", stable_digest("fsck", "0"))
    path.write_bytes(b"RPRO garbage")
    fsck_store(store, repair=True)
    assert store.clear() == 1  # the surviving artifact
    assert list(store.quarantine_dir.rglob("*.art"))
