"""Round-trip serialization: program, trace, stats (ISSUE satellite c)."""

import pathlib
import pickle

import pytest

from repro.analysis.profile import Profile
from repro.emu.interpreter import run_program
from repro.engine.keys import SCHEMA_VERSION
from repro.engine.serialize import (MAGIC, pack, program_fingerprint,
                                    unpack)
from repro.machine.descriptor import fig8_machine
from repro.robustness.errors import TraceIntegrityError
from repro.sim.pipeline import simulate_trace
from repro.toolchain import Model, compile_for_model, frontend
from repro.workloads import get_workload

SCALE = 0.2


@pytest.fixture(scope="module")
def compiled():
    wc = get_workload("wc")
    base = frontend(wc.source)
    profile = Profile.collect(base, inputs=wc.inputs(SCALE))
    return compile_for_model(base, Model.CMOV, profile, fig8_machine())


@pytest.fixture(scope="module")
def execution(compiled):
    wc = get_workload("wc")
    return run_program(compiled.program, inputs=wc.inputs(SCALE),
                       collect_trace=True)


def test_program_round_trip(compiled):
    blob = pack("compiled", compiled)
    loaded = unpack(blob, expect_kind="compiled")
    assert program_fingerprint(loaded.program) == \
        program_fingerprint(compiled.program)
    assert loaded.addresses == compiled.addresses
    assert loaded.model is compiled.model
    assert loaded.static_size == compiled.static_size


def test_trace_round_trip_resimulates_identically(compiled, execution):
    loaded_compiled = unpack(pack("compiled", compiled), "compiled")
    loaded_execution = unpack(pack("execution", execution), "execution")
    assert loaded_execution.return_value == execution.return_value
    assert len(loaded_execution.trace) == len(execution.trace)
    original = simulate_trace(execution.trace, compiled.addresses,
                              fig8_machine())
    # Program and trace were serialized *separately*; the uid-keyed
    # address map must still line up after both round-trip.
    replayed = simulate_trace(loaded_execution.trace,
                              loaded_compiled.addresses, fig8_machine())
    assert replayed == original


def test_stats_round_trip(compiled, execution):
    stats = simulate_trace(execution.trace, compiled.addresses,
                           fig8_machine())
    assert unpack(pack("stats", stats), "stats") == stats


def test_pack_rejects_unknown_kind():
    with pytest.raises(ValueError):
        pack("weights", {})


def test_unpack_rejects_bad_magic():
    with pytest.raises(TraceIntegrityError, match="magic"):
        unpack(b"ELF\x7f" + b"\x00" * 16)


def test_unpack_rejects_truncated_header():
    blob = pack("stats", {"cycles": 1})
    with pytest.raises(TraceIntegrityError, match="truncated"):
        unpack(blob[:10])


def test_unpack_rejects_kind_mismatch():
    blob = pack("stats", {"cycles": 1})
    with pytest.raises(TraceIntegrityError, match="kind mismatch"):
        unpack(blob, expect_kind="execution")


def test_unpack_rejects_flipped_body_byte():
    blob = bytearray(pack("stats", {"cycles": 12345}))
    blob[-1] ^= 0xFF
    with pytest.raises(TraceIntegrityError, match="digest"):
        unpack(bytes(blob), expect_kind="stats")


def test_unpack_rejects_schema_skew():
    blob = pack("stats", {"cycles": 1})
    header_len = int.from_bytes(blob[4:8], "big")
    header = blob[8:8 + header_len].replace(
        f'"schema": {SCHEMA_VERSION}'.encode(), b'"schema": 999')
    assert header != blob[8:8 + header_len], "schema field not found"
    forged = MAGIC + len(header).to_bytes(4, "big") + header \
        + blob[8 + header_len:]
    with pytest.raises(TraceIntegrityError, match="schema version"):
        unpack(forged)


def test_unpickler_rejects_foreign_globals():
    # Hand-roll an envelope whose digest is valid but whose body
    # references a module outside the allow-list.
    body = pickle.dumps(pathlib.PurePosixPath("/etc"))
    import hashlib
    import json
    header = json.dumps({"schema": SCHEMA_VERSION, "kind": "stats",
                         "sha256": hashlib.sha256(body).hexdigest(),
                         "length": len(body)}).encode()
    blob = MAGIC + len(header).to_bytes(4, "big") + header + body
    with pytest.raises(TraceIntegrityError, match="deserialize"):
        unpack(blob, expect_kind="stats")
