"""Stable digests: determinism, sensitivity, frozen option objects."""

import pytest

from repro.engine import keys
from repro.machine.descriptor import (CacheConfig, MachineDescription,
                                      fig8_machine, fig9_machine,
                                      fig11_machine)
from repro.regions.hyperblock import HyperblockParams
from repro.toolchain import ToolchainOptions


def test_stable_digest_is_deterministic_and_order_sensitive():
    assert keys.stable_digest(1, "a", 2.5) == keys.stable_digest(1, "a", 2.5)
    assert keys.stable_digest(1, "a") != keys.stable_digest("a", 1)
    # dict insertion order must NOT matter
    assert keys.stable_digest({"x": 1, "y": 2}) == \
        keys.stable_digest({"y": 2, "x": 1})


def test_stable_digest_rejects_unhashable_junk():
    with pytest.raises(TypeError):
        keys.stable_digest(object())


def test_toolchain_options_frozen_and_hashable():
    options = ToolchainOptions()
    with pytest.raises(Exception):
        options.enable_or_tree = False
    assert hash(options) == hash(ToolchainOptions())


def test_options_digest_tracks_semantic_fields_only():
    base = ToolchainOptions()
    assert base.digest() == ToolchainOptions().digest()
    assert base.digest() != ToolchainOptions(enable_or_tree=False).digest()
    assert base.digest() != ToolchainOptions(
        hyperblock=HyperblockParams(max_instructions=100)).digest()
    assert base.digest() != ToolchainOptions(rollback=True).digest()
    # Observability knobs must not cold-start the cache.
    assert base.digest() == ToolchainOptions(paranoid=True).digest()
    assert base.digest() == ToolchainOptions(verify=False).digest()
    assert base.digest() == ToolchainOptions(artifact_dir="/tmp/x").digest()


def test_machine_digest_ignores_name_only():
    a = MachineDescription(name="one", issue_width=8, branch_issue_limit=1)
    b = MachineDescription(name="two", issue_width=8, branch_issue_limit=1)
    assert a.digest() == b.digest()
    assert fig8_machine().digest() != fig9_machine().digest()
    assert fig8_machine().digest() != fig11_machine().digest()
    assert fig8_machine().digest() != \
        fig11_machine(icache_bytes=1024).digest()


def test_schedule_digest_ignores_memory_hierarchy():
    # Same issue parameters, different caches: compiled code is shared.
    assert fig8_machine().schedule_digest() == \
        fig11_machine().schedule_digest()
    assert fig8_machine().schedule_digest() != \
        fig9_machine().schedule_digest()
    perfect = MachineDescription(issue_width=8, branch_issue_limit=1)
    real = perfect.with_real_caches(CacheConfig(size_bytes=1024))
    assert perfect.schedule_digest() == real.schedule_digest()


def test_stage_keys_cover_their_inputs():
    ka = keys.compile_key("wc", "src", 0.5, 1000, "CMOV", "od", "sd")
    assert ka == keys.compile_key("wc", "src", 0.5, 1000, "CMOV", "od",
                                  "sd")
    assert ka != keys.compile_key("wc", "src", 0.4, 1000, "CMOV", "od",
                                  "sd")
    assert ka != keys.compile_key("wc", "src", 0.5, 1000, "FULLPRED",
                                  "od", "sd")
    assert ka != keys.compile_key("wc", "src2", 0.5, 1000, "CMOV", "od",
                                  "sd")
    ea = keys.execution_key(ka, 0.5, 1000)
    assert ea != keys.execution_key(ka, 0.5, 999)
    assert keys.stats_key(ea, "m1") != keys.stats_key(ea, "m2")
