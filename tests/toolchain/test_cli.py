"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main

SRC = """
int n = 40;
int total;
int main() {
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (i % 3 == 0) total = total + i;
  }
  return total;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(SRC)
    return str(path)


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "wc" in out and "eqntott" in out


def test_compile_dumps_ir(source_file, capsys):
    assert main(["compile", source_file, "--model", "fullpred"]) == 0
    out = capsys.readouterr().out
    assert "function main" in out


def test_run_reports_stats(source_file, capsys):
    assert main(["run", source_file, "--model", "cmov",
                 "--width", "4"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "speedup vs 1-issue" in out
    # The kernel's known answer: sum of multiples of 3 below 40.
    expected = sum(i for i in range(40) if i % 3 == 0)
    assert str(expected) in out


def test_run_models_agree(source_file, capsys):
    results = []
    for model in ("superblock", "cmov", "fullpred"):
        main(["run", source_file, "--model", model])
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if "result" in l)
        results.append(line.split(":")[1].strip())
    assert len(set(results)) == 1


def test_bench_runs_workload(capsys):
    assert main(["bench", "wc", "--scale", "0.15"]) == 0
    out = capsys.readouterr().out
    assert "Superblock" in out and "Full Predication" in out


def test_report_to_file(tmp_path, capsys):
    target = tmp_path / "out.txt"
    # Tiny scale keeps this test quick while covering the whole path.
    assert main(["report", "--scale", "0.1", "-o", str(target)]) == 0
    text = target.read_text()
    assert "Figure 8" in text and "Table 3" in text
