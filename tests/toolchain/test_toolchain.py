"""Toolchain driver: model pipelines, options, one-call API."""

import pytest

from repro.analysis.profile import Profile
from repro.ir import ISALevel, Opcode, VerificationError, verify_program
from repro.ir.opcodes import OpCategory
from repro.machine.descriptor import fig8_machine, scalar_machine
from repro.toolchain import (Model, ToolchainOptions, baseline_cycles,
                             compile_and_simulate, compile_for_model,
                             frontend, run_compiled)

SRC = """
char buf[256];
int n;
int vowels;
int other;
int main() {
  int i; int c;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    if (c == 'a' || c == 'e' || c == 'i') vowels = vowels + 1;
    else other = other + 1;
  }
  return vowels * 1000 + other;
}
"""

INPUTS = {"buf": [ord(c) for c in "realistic sample of text data!" * 7],
          "n": [200]}


@pytest.fixture(scope="module")
def base():
    return frontend(SRC)


@pytest.fixture(scope="module")
def profile(base):
    return Profile.collect(base, inputs=INPUTS)


def test_isa_levels_by_model():
    assert Model.SUPERBLOCK.isa_level is ISALevel.BASELINE
    assert Model.CMOV.isa_level is ISALevel.PARTIAL
    assert Model.FULLPRED.isa_level is ISALevel.FULL


def test_each_pipeline_respects_its_isa(base, profile):
    for model in Model:
        compiled = compile_for_model(base, model, profile,
                                     fig8_machine())
        verify_program(compiled.program, model.isa_level)


def test_fullpred_code_fails_partial_verification(base, profile):
    compiled = compile_for_model(base, Model.FULLPRED, profile,
                                 fig8_machine())
    has_predication = any(
        i.pred is not None or i.pdests
        for f in compiled.program.functions.values()
        for i in f.all_instructions())
    assert has_predication
    with pytest.raises(VerificationError):
        verify_program(compiled.program, ISALevel.PARTIAL)


def test_cmov_code_contains_conditional_moves(base, profile):
    compiled = compile_for_model(base, Model.CMOV, profile,
                                 fig8_machine())
    ops = {i.op for f in compiled.program.functions.values()
           for i in f.all_instructions()}
    assert ops & {Opcode.CMOV, Opcode.CMOV_COM, Opcode.SELECT}


def test_compile_does_not_mutate_base(base, profile):
    before = base.static_size()
    compile_for_model(base, Model.FULLPRED, profile, fig8_machine())
    assert base.static_size() == before


def test_run_compiled_cross_machine(base, profile):
    compiled = compile_for_model(base, Model.SUPERBLOCK, profile,
                                 fig8_machine())
    perfect = run_compiled(compiled, inputs=INPUTS)
    real = run_compiled(compiled, inputs=INPUTS,
                        machine=fig8_machine().with_real_caches())
    assert perfect.return_value == real.return_value
    assert real.stats.cycles >= perfect.stats.cycles


def test_compile_and_simulate_one_call():
    result = compile_and_simulate(SRC, Model.FULLPRED, fig8_machine(),
                                  inputs=INPUTS)
    golden = compile_and_simulate(SRC, Model.SUPERBLOCK,
                                  scalar_machine(), inputs=INPUTS)
    assert result.return_value == golden.return_value
    assert result.cycles < golden.cycles


def test_baseline_cycles_matches_scalar_run():
    assert baseline_cycles(SRC, inputs=INPUTS) == compile_and_simulate(
        SRC, Model.SUPERBLOCK, scalar_machine(), inputs=INPUTS).cycles


def test_options_disable_machinery(base, profile):
    options = ToolchainOptions(branch_combine=None,
                               enable_promotion=False,
                               enable_or_tree=False, unroll=None)
    for model in Model:
        compiled = compile_for_model(base, model, profile,
                                     fig8_machine(), options)
        result = run_compiled(compiled, inputs=INPUTS)
        golden = compile_and_simulate(SRC, Model.SUPERBLOCK,
                                      scalar_machine(), inputs=INPUTS)
        assert result.return_value == golden.return_value


def test_schedule_annotations_cover_instructions(base, profile):
    compiled = compile_for_model(base, Model.FULLPRED, profile,
                                 fig8_machine())
    for fn in compiled.program.functions.values():
        for inst in fn.all_instructions():
            assert inst.uid in compiled.schedule.cycles
