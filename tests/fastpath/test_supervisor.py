"""Native-engine supervisor: build, cache integrity, canaries, ladder.

Every test runs against a throwaway kernel cache and restores the
process's supervisor state afterwards, so the rest of the suite keeps
its (possibly already validated) native engine.
"""

import os
import signal as _signal
from pathlib import Path

import pytest

from repro.engine.metrics import PipelineMetrics
from repro.fastpath import native, supervisor
from repro.robustness.errors import (NativeKernelCrash, NativeParityError,
                                     NativeToolchainMissing)

HAVE_CC = any(__import__("shutil").which(c) for c in ("cc", "gcc"))
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C toolchain")


@pytest.fixture
def fresh_cache(tmp_path):
    """A throwaway kernel cache; state restored on exit."""
    cache = str(tmp_path / "kernels")
    supervisor.reset_for_testing(cache_dir=cache)
    yield cache
    supervisor.set_injection(None)
    supervisor.reset_for_testing()


# ----- env snapshot ---------------------------------------------------------

def test_repro_native_env_is_resolved_once(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_NATIVE", "0")
    supervisor.reset_for_testing(cache_dir=str(tmp_path))
    try:
        assert not supervisor.native_enabled()
        assert supervisor.current_engine() == "jitc"
        # Disabled-by-config is a choice, not a failure: no event.
        assert supervisor.degradation_events() == []
        assert not native.available()
        # A mid-run env mutation must NOT re-enable the engine.
        monkeypatch.setenv("REPRO_NATIVE", "1")
        assert not supervisor.native_enabled()
        assert not supervisor.native_active()
    finally:
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        supervisor.reset_for_testing()


def test_native_cflags_env_reaches_the_build_flags(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_NATIVE_CFLAGS", "-g -fno-omit-frame-pointer")
    supervisor.reset_for_testing(cache_dir=str(tmp_path))
    try:
        flags = supervisor._get_state().cflags
        assert flags[-2:] == ("-g", "-fno-omit-frame-pointer")
    finally:
        monkeypatch.delenv("REPRO_NATIVE_CFLAGS", raising=False)
        supervisor.reset_for_testing()


# ----- cache key + fingerprint ----------------------------------------------

def test_cache_key_depends_on_compiler_fingerprint(fresh_cache):
    supervisor.reset_for_testing(cache_dir=fresh_cache,
                                 fingerprint="probe-cc 1.0")
    first = supervisor.so_path()
    supervisor.reset_for_testing(cache_dir=fresh_cache,
                                 fingerprint="probe-cc 1.0")
    assert supervisor.so_path() == first
    supervisor.reset_for_testing(cache_dir=fresh_cache,
                                 fingerprint="probe-cc 2.0")
    assert supervisor.so_path() != first


def test_missing_toolchain_is_typed_and_demotes(fresh_cache):
    supervisor.reset_for_testing(cache_dir=fresh_cache,
                                 compilers=("no-such-cc-anywhere",))
    with pytest.raises(NativeToolchainMissing):
        supervisor.ensure_built()
    # The supervised acquire path records + demotes instead of raising.
    assert supervisor.acquire_so() is None
    assert isinstance(supervisor.last_error(), NativeToolchainMissing)
    assert supervisor.current_engine() == "jitc"
    counters = supervisor.counters_snapshot()
    assert counters["engine_demotions"] == 1
    events = supervisor.degradation_events()
    assert [(e.from_engine, e.to_engine) for e in events] == \
        [("native", "jitc")]
    assert events[0].error == "NativeToolchainMissing"
    assert set(events[0].to_dict()) == {"at", "from", "to", "reason",
                                        "error"}


# ----- build + digest sidecar -----------------------------------------------

@needs_cc
def test_build_publishes_digest_sidecar(fresh_cache):
    path = supervisor.ensure_built()
    sidecar = Path(path + ".sha256")
    assert sidecar.read_text().strip() == supervisor._digest_file(path)
    # Second call is a verified cache hit, not a rebuild.
    mtime = os.path.getmtime(path)
    assert supervisor.ensure_built() == path
    assert os.path.getmtime(path) == mtime


@needs_cc
def test_corrupt_cached_so_is_quarantined_and_rebuilt(fresh_cache):
    path = Path(supervisor.ensure_built())
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    path.write_bytes(bytes(blob))
    rebuilt = supervisor.ensure_built()
    assert rebuilt == str(path)
    assert supervisor._digest_file(rebuilt) == \
        Path(rebuilt + ".sha256").read_text().strip()
    quarantine = Path(fresh_cache) / "quarantine"
    objects = [p for p in quarantine.iterdir()
               if not p.name.endswith(".reason")]
    reasons = [p for p in quarantine.iterdir()
               if p.name.endswith(".reason")]
    assert len(objects) == 1 and len(reasons) == 1
    assert supervisor.counters_snapshot()["kernel_cache_quarantined"] == 1


@needs_cc
def test_missing_sidecar_counts_as_corruption(fresh_cache):
    path = supervisor.ensure_built()
    os.unlink(path + ".sha256")
    supervisor.ensure_built()
    assert supervisor.counters_snapshot()["kernel_cache_quarantined"] == 1


# ----- sandbox + parity canaries --------------------------------------------

@needs_cc
def test_healthy_kernel_validates_and_stays_native(fresh_cache):
    assert native.available()
    assert supervisor.current_engine() == "native"
    assert supervisor.counters_snapshot() == {
        "engine_demotions": 0, "native_parity_failures": 0,
        "native_kernel_crashes": 0, "kernel_cache_quarantined": 0}
    # The sandbox canary left its validation sidecar: a fresh process
    # over the same object skips the sacrificial subprocess.
    assert Path(supervisor.so_path() + ".ok").exists()


@needs_cc
def test_sandbox_canary_contains_a_segfault(fresh_cache):
    supervisor.set_injection("segv-child")
    assert not native.available()
    error = supervisor.last_error()
    assert isinstance(error, NativeKernelCrash)
    assert error.signal == int(_signal.SIGSEGV)
    assert supervisor.current_engine() == "jitc"
    counters = supervisor.counters_snapshot()
    assert counters["native_kernel_crashes"] == 1
    assert counters["engine_demotions"] == 1
    # The parent process survived (we are running in it) and the
    # unvalidated object carries no .ok sidecar.
    assert not Path(supervisor.so_path() + ".ok").exists()


@needs_cc
def test_sandbox_canary_parity_mismatch_quarantines(fresh_cache):
    supervisor.set_injection("parity-child")
    assert not native.available()
    assert isinstance(supervisor.last_error(), NativeParityError)
    counters = supervisor.counters_snapshot()
    assert counters["native_parity_failures"] == 1
    assert counters["kernel_cache_quarantined"] == 1
    assert not os.path.exists(supervisor.so_path())


@needs_cc
def test_in_process_parity_mismatch_quarantines(fresh_cache):
    supervisor.set_injection("parity-process")
    assert not native.available()
    assert isinstance(supervisor.last_error(), NativeParityError)
    counters = supervisor.counters_snapshot()
    assert counters["native_parity_failures"] == 1
    assert counters["kernel_cache_quarantined"] == 1
    assert supervisor.current_engine() == "jitc"


@needs_cc
def test_golden_digest_native_matches_python(fresh_cache):
    assert native.available()
    assert supervisor.golden_digest(native=True) == \
        supervisor.golden_digest(native=False)


# ----- counters -------------------------------------------------------------

def test_drain_moves_deltas_instead_of_copying(fresh_cache):
    supervisor.demote("probe one")
    first = PipelineMetrics()
    supervisor.drain_into(first)
    assert first.engine_demotions == 1
    # Nothing new since the drain: a second sink gets nothing.
    second = PipelineMetrics()
    supervisor.drain_into(second)
    assert second.engine_demotions == 0
    # Only the delta since the last drain moves.
    supervisor.demote("probe two")
    assert supervisor.current_engine() == "interpreter"
    supervisor.drain_into(second)
    assert second.engine_demotions == 1


def test_demotion_below_interpreter_is_a_noop(fresh_cache):
    assert supervisor.demote("one") == "jitc"
    assert supervisor.demote("two") == "interpreter"
    assert supervisor.demote("three") == "interpreter"
    assert supervisor.counters_snapshot()["engine_demotions"] == 2


# ----- kernel-cache scan (fsck integration) ---------------------------------

def test_scan_reports_and_repairs_orphan_sidecars(fresh_cache):
    cache = Path(fresh_cache)
    cache.mkdir(parents=True, exist_ok=True)
    (cache / "repro_kernel_deadbeef.so.sha256").write_text("0" * 64)
    (cache / "repro_kernel_deadbeef.so.ok").write_text("0" * 64)
    scan = supervisor.scan_kernel_cache(repair=False)
    assert scan.orphans == 2 and scan.scanned == 0
    scan = supervisor.scan_kernel_cache(repair=True)
    assert scan.orphans == 2
    assert supervisor.scan_kernel_cache().orphans == 0


@needs_cc
def test_fsck_store_folds_in_the_kernel_scan(fresh_cache, tmp_path):
    from repro.engine.recovery.fsck import fsck_store
    from repro.engine.store import ArtifactStore
    path = Path(supervisor.ensure_built())
    blob = bytearray(path.read_bytes())
    blob[0] ^= 0xFF
    path.write_bytes(bytes(blob))
    store = ArtifactStore(str(tmp_path / "store"))
    report = fsck_store(store, repair=False, include_kernels=True)
    assert report.kernel_scanned == 1 and report.kernel_ok == 0
    assert any(i.kind == "kernel" and i.action == "reported"
               for i in report.issues)
    repaired = fsck_store(store, repair=True, include_kernels=True)
    assert any(i.kind == "kernel" and i.action == "quarantined"
               for i in repaired.issues)
    clean = fsck_store(store, repair=False, include_kernels=True)
    assert clean.kernel_scanned == 0
    assert not any(i.kind == "kernel" for i in clean.issues)
    # Without the flag the store scan never touches the kernel cache.
    plain = fsck_store(store, repair=False)
    assert plain.kernel_scanned == 0 and plain.kernel_cache == ""
