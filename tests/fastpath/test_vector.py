"""Vector backend: equivalence, chunk invariance, sharding, metrics.

The vector engine (native C kernels with a pure-NumPy fallback) must be
byte-identical to the legacy and fastpath engines on every observable,
at every chunk size, and at every ``jobs`` level.  The property test
reuses the differential fuzz generator's stress profiles, so the same
program shapes that hunt miscompiles also hunt engine drift.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.profile import Profile
from repro.emu import run_program
from repro.emu.memory import EmulationFault
from repro.engine.stages import PipelineContext
from repro.fastpath.decode import decode_program
from repro.fastpath.interp import run_program_fast
from repro.fastpath.simulate import (StreamSimulator, prepare_sim,
                                     simulate_columns)
from repro.fastpath.vector import (VectorSimPrep, VectorSimulator,
                                   emulate_and_simulate_vector,
                                   simulate_columns_vector)
from repro.fuzz.generator import PROFILE_ORDER, generate_case
from repro.machine.descriptor import MachineDescription, fig8_machine
from repro.sim.pipeline import simulate_trace
from repro.toolchain import (Model, compile_for_model, frontend,
                             run_compiled)
from repro.workloads import get_workload

#: ExecutionResult fields every engine must reproduce exactly
_EXACT = ("return_value", "dynamic_count", "suppressed_count",
          "branch_outcomes", "block_counts", "output_signature",
          "output_count", "memory_digest")

_KERNEL = """
int data[32];
int main() {
    int i; int j; int acc;
    acc = 0;
    for (i = 0; i < 40; i = i + 1) {
        for (j = 0; j < (i % 7) + 2; j = j + 1) {
            if (data[(i + j) % 32] > j) {
                acc = acc + data[j % 32];
            } else {
                acc = acc - j;
            }
            data[(i * 3 + j) % 32] = acc % 251;
        }
    }
    return acc % 100003;
}
"""


@pytest.fixture(scope="module")
def kernel():
    """Compiled kernel + reference trace/stats, shared by this module."""
    base = frontend(_KERNEL)
    profile = Profile.collect(base)
    machine = fig8_machine()
    compiled = compile_for_model(base, Model.FULLPRED, profile, machine)
    decoded = decode_program(compiled.program)
    execution = run_program_fast(compiled.program, collect_trace=True,
                                 decoded=decoded)
    prep = prepare_sim(decoded, compiled.addresses, machine)
    stats = simulate_columns(execution.trace, prep, machine)
    return compiled, decoded, execution, prep, machine, stats


def _assert_stats_equal(a, b, context=""):
    for field in dataclasses.fields(b):
        assert getattr(a, field.name) == getattr(b, field.name), \
            (field.name, context)


# ----- chunk-size invariance ------------------------------------------------

@pytest.mark.parametrize("chunk_events", [1, 7, 4096])
def test_chunk_size_invariance_native(kernel, chunk_events):
    compiled, _, execution, prep, machine, ref = kernel
    stats = simulate_columns_vector(execution.trace,
                                    VectorSimPrep(prep), machine,
                                    chunk_events=chunk_events)
    _assert_stats_equal(stats, ref, f"chunk={chunk_events}")


@pytest.mark.parametrize("chunk_events", [7, 4096])
def test_chunk_size_invariance_python_fallback(kernel, chunk_events):
    """The pure-NumPy path (no native kernel) is also chunk-invariant."""
    _, _, execution, prep, machine, ref = kernel
    sim = VectorSimulator(VectorSimPrep(prep), machine, native=False)
    for chunk in execution.trace.chunks(chunk_events):
        sim.feed(chunk)
    _assert_stats_equal(sim.finish(), ref, f"fallback chunk={chunk_events}")


def test_boundary_digest_chunk_invariant(kernel):
    """Carried simulator state is identical however the trace is cut."""
    _, _, execution, prep, machine, _ = kernel
    cut = len(execution.trace) // 2
    digests = []
    for sizes in ((cut,), (97,), (13,)):
        sim = VectorSimulator(VectorSimPrep(prep), machine)
        fed = 0
        for chunk in execution.trace.chunks(sizes[0]):
            if fed >= cut:
                break
            sim.feed(chunk)
            fed += len(chunk)
        if fed == cut:
            digests.append(sim.boundary_digest())
    assert len(set(digests)) <= 1


# ----- sharding -------------------------------------------------------------

def test_sharded_jobs_byte_identical(kernel):
    compiled, _, execution, prep, machine, ref = kernel
    for jobs in (2, 4):
        stats = simulate_columns_vector(
            execution.trace, VectorSimPrep(prep), machine,
            chunk_events=512, jobs=jobs, task_key="test")
        _assert_stats_equal(stats, ref, f"jobs={jobs}")


# ----- engine selection end-to-end ------------------------------------------

def test_run_compiled_engine_matrix(kernel):
    compiled, _, _, _, machine, _ = kernel
    results = {engine: run_compiled(compiled, machine=machine,
                                    engine=engine)
               for engine in ("legacy", "fastpath", "stream", "vector")}
    ref = results["legacy"]
    for engine, result in results.items():
        assert result.return_value == ref.return_value, engine
        _assert_stats_equal(result.stats, ref.stats, engine)
    # the fused engines never materialize the trace
    assert results["stream"].execution.trace is None
    assert results["vector"].execution.trace is None
    with pytest.raises(ValueError):
        run_compiled(compiled, machine=machine, engine="warp")


def test_pipeline_context_engines_agree():
    workload = get_workload("wc")
    machine = MachineDescription(issue_width=4)
    summaries = {}
    contexts = {}
    for engine in ("fastpath", "stream", "vector"):
        ctx = PipelineContext(engine=engine, scale=0.3)
        summaries[engine] = ctx.run_summary(workload, Model.FULLPRED,
                                            machine)
        contexts[engine] = ctx
    ref = summaries["fastpath"]
    for engine, summary in summaries.items():
        assert summary.return_value == ref.return_value, engine
        _assert_stats_equal(summary.stats, ref.stats, engine)
    # fused/vector runs still split emulate vs simulate wall time
    for engine in ("stream", "vector"):
        metrics = contexts[engine].metrics
        assert metrics.stages["emulate"].invocations == 1
        assert metrics.stages["simulate"].invocations == 1
    assert contexts["vector"].metrics.vector_chunks_total >= 1
    data = contexts["vector"].metrics.to_dict()
    assert data["vector_chunks_total"] >= 1
    assert "vector_chunks_per_second" in data


def test_pipeline_context_vector_sharded_matches_serial():
    workload = get_workload("wc")
    machine = MachineDescription(issue_width=4)
    serial = PipelineContext(engine="vector", scale=0.3).run_summary(
        workload, Model.FULLPRED, machine)
    sharded = PipelineContext(engine="vector", scale=0.3,
                              jobs=2).run_summary(
        workload, Model.FULLPRED, machine)
    assert sharded.return_value == serial.return_value
    _assert_stats_equal(sharded.stats, serial.stats, "jobs=2")


def test_pipeline_context_rejects_unknown_engine():
    with pytest.raises(ValueError):
        PipelineContext(engine="warp")


# ----- fused emulate→simulate ----------------------------------------------

def test_fused_vector_matches_stream_sim(kernel):
    compiled, decoded, execution, prep, machine, ref = kernel
    vec, vstats = emulate_and_simulate_vector(
        compiled.program, compiled.addresses, machine, decoded=decoded)
    _assert_stats_equal(vstats, ref, "fused")
    for field in _EXACT:
        assert getattr(vec, field) == getattr(execution, field), field
    assert vec.trace is None


def test_python_fallback_simulator_matches_stream(kernel):
    _, _, execution, prep, machine, _ = kernel
    stream = StreamSimulator(prep, machine)
    vector = VectorSimulator(VectorSimPrep(prep), machine, native=False)
    for chunk in execution.trace.chunks(999):
        stream.feed(chunk)
        vector.feed(chunk)
    _assert_stats_equal(vector.finish(), stream.finish(), "fallback")


def test_native_emulator_fault_parity():
    source = "int main() { int a; a = 0; return 5 / a; }"
    base = frontend(source)
    empty = Profile(block_counts={}, branch_outcomes={})
    compiled = compile_for_model(base, Model.SUPERBLOCK, empty,
                                 fig8_machine())
    with pytest.raises(EmulationFault) as fast_exc:
        run_program_fast(compiled.program, collect_trace=True)
    from repro.fastpath.native import run_program_native
    with pytest.raises(EmulationFault) as native_exc:
        run_program_native(compiled.program, collect_trace=True)
    assert str(native_exc.value) == str(fast_exc.value)


# ----- property test over the fuzz generator's stress profiles --------------

@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large,
                                 HealthCheck.filter_too_much])
@given(seed=st.integers(0, 2**31 - 1),
       index=st.integers(0, len(PROFILE_ORDER) - 1))
def test_vector_matches_legacy_on_fuzz_profiles(seed, index):
    """Legacy, fastpath and vector agree on cycle counts, stall
    breakdowns and store streams for every fuzz-profile program."""
    case = generate_case(seed, index)
    machine = fig8_machine()
    try:
        base = frontend(case.source)
        profile = Profile.collect(base, inputs=case.inputs,
                                  max_steps=300_000)
    except EmulationFault:
        return  # a legitimately faulting case proves nothing here
    for model in (Model.SUPERBLOCK, Model.FULLPRED):
        compiled = compile_for_model(base, model, profile, machine)
        try:
            legacy = run_program(compiled.program, inputs=case.inputs,
                                 collect_trace=True, max_steps=600_000)
        except EmulationFault as exc:
            # fault parity: the vector engine must fault identically
            with pytest.raises(EmulationFault) as vexc:
                emulate_and_simulate_vector(
                    compiled.program, compiled.addresses, machine,
                    inputs=case.inputs, max_steps=600_000)
            assert str(vexc.value) == str(exc), (model, case.case_id)
            continue
        decoded = decode_program(compiled.program)
        fast = run_program_fast(compiled.program, inputs=case.inputs,
                                collect_trace=True, max_steps=600_000,
                                decoded=decoded)
        vec, vstats = emulate_and_simulate_vector(
            compiled.program, compiled.addresses, machine,
            inputs=case.inputs, max_steps=600_000, decoded=decoded)
        for field in _EXACT:
            assert getattr(fast, field) == getattr(legacy, field), \
                (field, model, case.case_id)
            assert getattr(vec, field) == getattr(legacy, field), \
                (field, model, case.case_id)
        legacy_stats = simulate_trace(legacy.trace, compiled.addresses,
                                      machine)
        _assert_stats_equal(vstats, legacy_stats,
                            (model, case.case_id))
        # chunk-size invariance on the recorded columnar trace
        prep = VectorSimPrep(prepare_sim(decoded, compiled.addresses,
                                         machine))
        for chunk_events in (7, 4096):
            chunked = simulate_columns_vector(
                fast.trace, prep, machine, chunk_events=chunk_events)
            _assert_stats_equal(chunked, legacy_stats,
                                (model, chunk_events, case.case_id))
