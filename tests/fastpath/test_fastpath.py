"""Fastpath engine: decode, columnar traces, streaming, equivalence.

The fastpath (`src/repro/fastpath/`) re-implements the emulator's and
simulator's hot loops over dense integer-indexed structures; every test
here pins it to the legacy object-graph implementations, which remain
the differential oracle.
"""

import pytest

from repro.emu.interpreter import run_program
from repro.engine.serialize import pack, unpack
from repro.fastpath.columns import FLAG_EXECUTED, TraceColumns
from repro.fastpath.decode import decode_program
from repro.fastpath.interp import run_program_fast
from repro.fastpath.simulate import (emulate_and_simulate_stream,
                                     prepare_sim, simulate_columns)
from repro.robustness.differential import assert_fastpath_equivalent
from repro.robustness.errors import ModelDivergenceError
from repro.sim.pipeline import simulate_trace
from repro.toolchain import Model, compile_for_model
from tests.conftest import wc_expected, wc_inputs

_OBSERVABLES = ("return_value", "dynamic_count", "suppressed_count",
                "branch_outcomes", "block_counts", "output_signature",
                "output_count", "memory_digest")


@pytest.fixture(params=list(Model), ids=lambda m: m.name.lower())
def wc_compiled(request, wc_program, wc_profile, machine8):
    return compile_for_model(wc_program, request.param, wc_profile,
                             machine8)


# ----- decode --------------------------------------------------------------

def test_decode_covers_every_instruction(wc_program):
    decoded = decode_program(wc_program)
    total = sum(len(list(fn.all_instructions()))
                for fn in wc_program.functions.values())
    assert len(decoded.instructions) == total
    assert sum(len(fn.code) for fn in decoded.functions.values()) == total
    # static indices follow assign_addresses program order
    flat = [inst for fn in wc_program.functions.values()
            for inst in fn.all_instructions()]
    assert list(decoded.instructions) == flat


def test_decode_is_pure_metadata(wc_program):
    """Decoding must not mutate the program (same IR, same uids)."""
    from repro.ir.printer import format_program
    before = format_program(wc_program)
    decode_program(wc_program)
    assert format_program(wc_program) == before


# ----- emulation equivalence ----------------------------------------------

def test_fast_emulation_matches_legacy(wc_compiled):
    legacy = run_program(wc_compiled.program, inputs=wc_inputs(),
                         collect_trace=True)
    fast = run_program_fast(wc_compiled.program, inputs=wc_inputs(),
                            collect_trace=True)
    assert fast.return_value == wc_expected()
    for field in _OBSERVABLES:
        assert getattr(fast, field) == getattr(legacy, field), field
    assert fast.trace.to_events(wc_compiled.program) == legacy.trace


def test_trace_events_view_on_execution_result(wc_compiled):
    fast = run_program_fast(wc_compiled.program, inputs=wc_inputs(),
                            collect_trace=True)
    events = fast.trace_events(wc_compiled.program)
    assert len(events) == len(fast.trace) == fast.dynamic_count
    executed = sum(1 for e in events if e.executed)
    assert executed == fast.dynamic_count - fast.suppressed_count
    assert executed == sum(1 for f in fast.trace.flags
                           if f & FLAG_EXECUTED)


# ----- simulation equivalence ---------------------------------------------

def test_fast_simulation_matches_legacy(wc_compiled, machine8):
    legacy = run_program(wc_compiled.program, inputs=wc_inputs(),
                         collect_trace=True)
    fast = run_program_fast(wc_compiled.program, inputs=wc_inputs(),
                            collect_trace=True)
    want = simulate_trace(legacy.trace, wc_compiled.addresses, machine8)
    prep = prepare_sim(decode_program(wc_compiled.program),
                       wc_compiled.addresses)
    assert simulate_columns(fast.trace, prep, machine8) == want


def test_fast_simulation_matches_legacy_with_real_caches(wc_compiled,
                                                         machine8):
    machine = machine8.with_real_caches()
    legacy = run_program(wc_compiled.program, inputs=wc_inputs(),
                         collect_trace=True)
    fast = run_program_fast(wc_compiled.program, inputs=wc_inputs(),
                            collect_trace=True)
    want = simulate_trace(legacy.trace, wc_compiled.addresses, machine)
    prep = prepare_sim(decode_program(wc_compiled.program),
                       wc_compiled.addresses)
    assert simulate_columns(fast.trace, prep, machine) == want


# ----- streaming -----------------------------------------------------------

@pytest.mark.parametrize("chunk", [1, 7, 1 << 16])
def test_streaming_matches_batch_at_any_chunk_size(wc_compiled, machine8,
                                                   chunk):
    legacy = run_program(wc_compiled.program, inputs=wc_inputs(),
                         collect_trace=True)
    want = simulate_trace(legacy.trace, wc_compiled.addresses, machine8)
    streamed, stats = emulate_and_simulate_stream(
        wc_compiled.program, wc_compiled.addresses, machine8,
        inputs=wc_inputs(), chunk_events=chunk)
    assert stats == want
    assert streamed.trace is None  # never materialized
    for field in _OBSERVABLES:
        assert getattr(streamed, field) == getattr(legacy, field), field


# ----- columnar persistence ------------------------------------------------

def test_columns_round_trip_through_rpro_envelope(wc_compiled):
    fast = run_program_fast(wc_compiled.program, inputs=wc_inputs(),
                            collect_trace=True)
    loaded = unpack(pack("execution", fast), expect_kind="execution")
    assert isinstance(loaded.trace, TraceColumns)
    assert loaded.trace == fast.trace
    assert loaded.trace.to_events(wc_compiled.program) == \
        fast.trace.to_events(wc_compiled.program)
    for field in _OBSERVABLES:
        assert getattr(loaded, field) == getattr(fast, field), field


def test_columns_are_smaller_than_event_list_on_disk(wc_compiled):
    legacy = run_program(wc_compiled.program, inputs=wc_inputs(),
                         collect_trace=True)
    fast = run_program_fast(wc_compiled.program, inputs=wc_inputs(),
                            collect_trace=True)
    fast_blob = pack("execution", fast)
    legacy_blob = pack("execution", legacy)
    assert len(fast_blob) < len(legacy_blob)


def test_columns_slice_and_chunks_partition_the_trace(wc_compiled):
    fast = run_program_fast(wc_compiled.program, inputs=wc_inputs(),
                            collect_trace=True)
    cols = fast.trace
    events = cols.to_events(wc_compiled.program)
    rebuilt = []
    for chunk in cols.chunks(97):
        rebuilt.extend(chunk.to_events(wc_compiled.program))
    assert rebuilt == events


# ----- differential oracle -------------------------------------------------

def test_assert_fastpath_equivalent_passes(wc_compiled, machine8):
    assert_fastpath_equivalent(wc_compiled, inputs=wc_inputs(),
                               machine=machine8, workload="wc")


def test_assert_fastpath_equivalent_catches_semantic_drift(
        wc_compiled, machine8, monkeypatch):
    """Sanity: a deliberately broken fast interpreter must be caught."""
    import repro.robustness.differential as differential

    real = run_program_fast

    def broken(program, **kwargs):
        result = real(program, **kwargs)
        result.output_signature ^= 1
        return result

    monkeypatch.setattr("repro.fastpath.interp.run_program_fast", broken)
    with pytest.raises(ModelDivergenceError, match="fastpath"):
        differential.assert_fastpath_equivalent(
            wc_compiled, inputs=wc_inputs(), machine=machine8,
            workload="wc")
