"""Property-based fastpath equivalence on random MiniC programs.

Hypothesis generates small structured programs (loops, nested
conditionals, array traffic — the same shape as the integration-level
miscompilation net) and every one must produce identical
``ExecutionResult`` observables and identical ``SimulationStats`` under
the legacy loops and the fastpath, across all three processor models.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.profile import Profile
from repro.emu import run_program
from repro.fastpath.decode import decode_program
from repro.fastpath.interp import run_program_fast
from repro.fastpath.simulate import prepare_sim, simulate_columns
from repro.machine.descriptor import fig8_machine
from repro.sim.pipeline import simulate_trace
from repro.toolchain import Model, compile_for_model, frontend

_VARS = ["v0", "v1", "v2"]


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return draw(st.sampled_from(
            _VARS + [str(draw(st.integers(0, 9)))]))
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return draw(st.sampled_from(
            _VARS + [str(draw(st.integers(0, 9)))]))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    if choice == 1:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({left} {op} {right})"
    if choice == 2:
        op = draw(st.sampled_from(["<", "<=", "==", "!="]))
        return f"({left} {op} {right})"
    if choice == 3:
        idx = draw(expressions(depth=0))
        return f"arr[({idx}) % 8]"
    return f"(({left}) % 5 + 5) % 5"


@st.composite
def statements(draw, depth=2):
    kind = draw(st.integers(0, 3 if depth > 0 else 1))
    if kind == 0:
        var = draw(st.sampled_from(_VARS))
        return f"{var} = {draw(expressions(depth=2))};"
    if kind == 1:
        idx = draw(expressions(depth=0))
        return f"arr[({idx}) % 8] = {draw(expressions(depth=1))};"
    if kind == 2:
        cond = (f"{draw(expressions(depth=1))} "
                f"{draw(st.sampled_from(['<', '==', '!=', '>=']))} "
                f"{draw(expressions(depth=1))}")
        then = draw(statements(depth=depth - 1))
        if draw(st.booleans()):
            other = draw(statements(depth=depth - 1))
            return f"if ({cond}) {{ {then} }} else {{ {other} }}"
        return f"if ({cond}) {{ {then} }}"
    body = draw(statements(depth=depth - 1))
    return (f"for (it = 0; it < 5; it = it + 1) "
            f"{{ {body} v0 = v0 + 1; }}")


@st.composite
def programs(draw):
    body = " ".join(draw(st.lists(statements(), min_size=1, max_size=4)))
    decls = " ".join(f"int {v};" for v in _VARS) + " int it;"
    inits = " ".join(f"{v} = {draw(st.integers(0, 9))};" for v in _VARS)
    checks = " + ".join(f"{v} * {k + 2}" for k, v in enumerate(_VARS))
    return (f"int arr[8];\n"
            f"int main() {{ {decls} {inits} {body} "
            f"for (it = 0; it < 8; it = it + 1) "
            f"v0 = (v0 + arr[it]) % 65521; "
            f"return ({checks}) % 1000003; }}")


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(source=programs(),
       seeds=st.lists(st.integers(0, 99), min_size=8, max_size=8))
def test_fastpath_matches_legacy_on_random_programs(source, seeds):
    inputs = {"arr": seeds}
    base = frontend(source)
    profile = Profile.collect(base, inputs=inputs, max_steps=300_000)
    machine = fig8_machine()
    for model in Model:
        compiled = compile_for_model(base, model, profile, machine)
        legacy = run_program(compiled.program, inputs=inputs,
                             collect_trace=True, max_steps=600_000)
        decoded = decode_program(compiled.program)
        fast = run_program_fast(compiled.program, inputs=inputs,
                                collect_trace=True, max_steps=600_000,
                                decoded=decoded)
        assert fast.output_signature == legacy.output_signature, \
            (model, source)
        assert fast.return_value == legacy.return_value, (model, source)
        assert fast.memory_digest == legacy.memory_digest, (model, source)
        legacy_stats = simulate_trace(legacy.trace, compiled.addresses,
                                      machine)
        fast_stats = simulate_columns(
            fast.trace, prepare_sim(decoded, compiled.addresses), machine)
        for field in dataclasses.fields(legacy_stats):
            assert getattr(fast_stats, field.name) == \
                getattr(legacy_stats, field.name), (field.name, model,
                                                    source)
