"""Mid-run kernel faults: demote in place, stitch byte-identically.

A kernel fault injected after chunk *k* must leave the vector engine's
stitched output byte-identical to the pure-Python run at every chunk
size and job count — the degradation ladder is observable in the
counters, never in the figures.
"""

import pytest

from repro.analysis.profile import Profile
from repro.fastpath import native, supervisor
from repro.fastpath.decode import decode_program
from repro.fastpath.interp import run_program_fast
from repro.fastpath.vector import (emulate_and_simulate_vector,
                                   prepare_vector,
                                   simulate_columns_vector)
from repro.machine.descriptor import MachineDescription
from repro.robustness.faults import CAMPAIGN_INPUTS, CAMPAIGN_SOURCE
from repro.toolchain import Model, compile_for_model, frontend

HAVE_CC = any(__import__("shutil").which(c) for c in ("cc", "gcc"))
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C toolchain")


@pytest.fixture(scope="module")
def program():
    base = frontend(CAMPAIGN_SOURCE)
    profile = Profile.collect(base, inputs=CAMPAIGN_INPUTS)
    machine = MachineDescription(issue_width=4, branch_issue_limit=2,
                                 name="demotion").with_real_caches()
    compiled = compile_for_model(base, Model.FULLPRED, profile, machine)
    decoded = decode_program(compiled.program)
    return compiled, decoded, machine


@pytest.fixture(scope="module")
def reference(program):
    """Pure-Python ground truth: execution observables + cycle stats."""
    compiled, decoded, machine = program
    execution, stats = emulate_and_simulate_vector(
        compiled.program, compiled.addresses, machine,
        inputs=CAMPAIGN_INPUTS, decoded=decoded, native=False)
    return _observables(execution), repr(stats)


def _observables(execution) -> str:
    return repr((execution.return_value, execution.dynamic_count,
                 execution.suppressed_count, execution.output_signature,
                 execution.output_count, execution.memory_digest))


@pytest.fixture
def healthy_native():
    """The process's real kernel cache (usually already validated)."""
    supervisor.reset_for_testing()
    if not native.available():
        pytest.skip("native kernels unavailable on this host")
    yield
    supervisor.set_injection(None)
    supervisor.reset_for_testing()


@needs_cc
@pytest.mark.parametrize("chunk_events,fault_at",
                         [(1, 3), (7, 2), (4096, 1)])
def test_scan_fault_after_chunk_k_is_byte_identical(
        program, reference, healthy_native, chunk_events, fault_at):
    compiled, decoded, machine = program
    supervisor.set_injection(("scan-fault", fault_at))
    execution, stats = emulate_and_simulate_vector(
        compiled.program, compiled.addresses, machine,
        inputs=CAMPAIGN_INPUTS, chunk_events=chunk_events,
        decoded=decoded)
    ref_obs, ref_stats = reference
    assert _observables(execution) == ref_obs
    assert repr(stats) == ref_stats
    counters = supervisor.counters_snapshot()
    assert counters["native_kernel_crashes"] >= 1
    assert counters["engine_demotions"] >= 1


@needs_cc
@pytest.mark.parametrize("chunk_events,fault_at",
                         [(1, 3), (7, 1), (7, 2)])
def test_emulator_fault_after_chunk_k_is_byte_identical(
        program, reference, healthy_native, chunk_events, fault_at):
    compiled, decoded, machine = program
    supervisor.set_injection(("emu-fault", fault_at))
    execution, stats = emulate_and_simulate_vector(
        compiled.program, compiled.addresses, machine,
        inputs=CAMPAIGN_INPUTS, chunk_events=chunk_events,
        decoded=decoded)
    ref_obs, ref_stats = reference
    assert _observables(execution) == ref_obs
    assert repr(stats) == ref_stats
    counters = supervisor.counters_snapshot()
    assert counters["native_kernel_crashes"] >= 1
    assert counters["engine_demotions"] >= 1


@needs_cc
@pytest.mark.parametrize("jobs", [1, 4])
@pytest.mark.parametrize("chunk_events", [7, 4096])
def test_sharded_simulation_with_fault_matches_serial(
        program, healthy_native, jobs, chunk_events):
    compiled, decoded, machine = program
    execution = run_program_fast(compiled.program,
                                 inputs=CAMPAIGN_INPUTS,
                                 collect_trace=True, decoded=decoded)
    prep = prepare_vector(decoded, compiled.addresses, machine)
    ref_stats = simulate_columns_vector(
        execution.trace, prep, machine, chunk_events=chunk_events,
        jobs=1, native=False)
    supervisor.set_injection(("scan-fault", 1))
    stats = simulate_columns_vector(
        execution.trace, prep, machine, chunk_events=chunk_events,
        jobs=jobs)
    assert repr(stats) == repr(ref_stats)
    if jobs == 1:
        # The sharded path pre-passes in workers (Python scan); only
        # the serial path actually hits the injected kernel fault.
        counters = supervisor.counters_snapshot()
        assert counters["native_kernel_crashes"] >= 1
        assert counters["engine_demotions"] >= 1
