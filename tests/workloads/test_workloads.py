"""Workload definitions: registry, determinism, executability."""

import pytest

from repro.emu import run_program
from repro.ir import ISALevel, verify_program
from repro.toolchain import frontend
from repro.workloads import (DeterministicRandom, all_workloads,
                             get_workload, workload_names)

EXPECTED_NAMES = {"wc", "grep", "cmp", "qsort", "compress", "eqntott",
                  "espresso", "li", "sc", "eqn", "lex", "yacc", "cccp",
                  "alvinn", "ear"}


def test_all_fifteen_benchmarks_registered():
    assert set(workload_names()) == EXPECTED_NAMES


def test_every_workload_documents_its_paper_counterpart():
    for w in all_workloads():
        assert w.stands_for, w.name
        assert w.description, w.name


def test_float_benchmarks_flagged():
    assert get_workload("alvinn").category == "float"
    assert get_workload("ear").category == "float"
    assert get_workload("wc").category == "integer"


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_workload_compiles_and_runs(name):
    w = get_workload(name)
    program = frontend(w.source)
    verify_program(program, ISALevel.BASELINE)
    result = run_program(program, inputs=w.inputs(0.15),
                         max_steps=2_000_000)
    assert result.dynamic_count > 500, "kernel too small to measure"


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_inputs_scale(name):
    w = get_workload(name)
    small = run_program(frontend(w.source), inputs=w.inputs(0.15),
                        max_steps=3_000_000).dynamic_count
    large = run_program(frontend(w.source), inputs=w.inputs(0.6),
                        max_steps=6_000_000).dynamic_count
    assert large > small


def test_deterministic_random_is_stable():
    a = DeterministicRandom(42)
    b = DeterministicRandom(42)
    assert [a.next_u32() for _ in range(10)] == \
        [b.next_u32() for _ in range(10)]


def test_deterministic_random_ranges():
    rng = DeterministicRandom(7)
    values = [rng.randint(3, 9) for _ in range(200)]
    assert min(values) >= 3 and max(values) <= 9
    assert len(set(values)) > 3


def test_shuffle_is_permutation():
    rng = DeterministicRandom(11)
    items = list(range(30))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items


def test_text_generator_length_and_charset():
    rng = DeterministicRandom(13)
    text = rng.text(500, ["alpha", "beta"], newline_every=5)
    assert len(text) == 500
    assert b"\n" in text
