"""Suite failure policy: strict propagates, degrade quarantines."""

import pytest

from repro.emu.memory import EmulationFault
from repro.experiments.runner import ExperimentSuite
from repro.ir.function import IRError
from repro.machine.descriptor import fig8_machine
from repro.robustness.errors import ReproError
from repro.robustness.faults import inject_bad_branch_target
from repro.workloads import get_workload


def _suite(mode: str) -> ExperimentSuite:
    return ExperimentSuite(workloads=[get_workload("wc"),
                                      get_workload("cmp")],
                           scale=0.3, mode=mode)


def _force_failure(suite: ExperimentSuite, name: str) -> None:
    """Corrupt one workload's base IR so its pipeline must fail."""
    inject_bad_branch_target(suite._frontend(name))


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        ExperimentSuite(mode="yolo")


def test_strict_mode_propagates_typed_errors():
    suite = _suite("strict")
    _force_failure(suite, "wc")
    with pytest.raises((ReproError, EmulationFault, IRError)):
        suite.speedups(fig8_machine())


def test_degrade_mode_completes_remaining_workloads():
    suite = _suite("degrade")
    _force_failure(suite, "wc")
    table = suite.speedups(fig8_machine())
    # The healthy workload completed with sane results...
    assert set(table) == {"cmp"}
    assert all(v > 0 for v in table["cmp"].values())
    # ...and the failure was recorded, structured.
    (failure,) = suite.failures
    assert failure.workload == "wc"
    assert failure.stage == "speedup"
    assert failure.error_type
    assert failure.message
    # Follow-up queries skip the quarantined workload without re-failing.
    assert set(suite.dynamic_counts()) == {"cmp"}
    assert len(suite.failures) == 1


def test_failure_report_is_structured_text():
    suite = _suite("degrade")
    _force_failure(suite, "wc")
    suite.speedups(fig8_machine())
    report = suite.failure_report()
    assert "FAILED WORKLOADS" in report
    assert "wc" in report
    assert suite.failures[0].error_type in report


def test_validate_models_flags_divergence_in_degrade_mode():
    suite = _suite("degrade")
    outcome = suite.validate_models(fig8_machine())
    assert outcome == {"wc": True, "cmp": True}
    assert not suite.failures
