"""CLI failure mapping: typed errors become distinct exit codes."""

import pytest

from repro.cli import main

SLOW_SRC = """
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 200000; i = i + 1) {
    s = s + i;
  }
  return s;
}
"""


@pytest.fixture
def slow_file(tmp_path):
    path = tmp_path / "slow.c"
    path.write_text(SLOW_SRC)
    return str(path)


def test_timeout_maps_to_exit_13(slow_file, capsys):
    # A zero budget is exceeded at the first heartbeat (64K steps in).
    code = main(["run", slow_file, "--time-budget", "0"])
    assert code == 13
    err = capsys.readouterr().err
    assert "error[EmulationTimeout]" in err
    assert "Traceback" not in err


def test_robustness_flags_accepted(slow_file, capsys):
    code = main(["compile", slow_file, "--model", "fullpred",
                 "--paranoid"])
    assert code == 0
    assert "function main" in capsys.readouterr().out


def test_missing_file_maps_to_exit_10(tmp_path, capsys):
    code = main(["run", str(tmp_path / "nope.c")])
    assert code == 10
    err = capsys.readouterr().err
    assert "error[FileNotFoundError]" in err


def test_parse_error_maps_to_exit_11(tmp_path, capsys):
    path = tmp_path / "bad.c"
    path.write_text("int main() { return %%; }")
    code = main(["compile", str(path)])
    assert code == 11
    assert "error[ParseError]" in capsys.readouterr().err


def test_sema_error_maps_to_exit_11(tmp_path, capsys):
    path = tmp_path / "nomain.c"
    path.write_text("int helper() { return 1; }")
    code = main(["run", str(path)])
    assert code == 11
    err = capsys.readouterr().err
    assert "error[SemaError]" in err
    assert "Traceback" not in err


def test_lex_error_maps_to_exit_11(tmp_path, capsys):
    path = tmp_path / "lex.c"
    path.write_text("int main() { return `; }")
    code = main(["compile", str(path)])
    assert code == 11
    assert "error[LexError]" in capsys.readouterr().err


def test_selftest_passes(capsys):
    assert main(["selftest"]) == 0
    out = capsys.readouterr().out
    assert "corruption classes caught" in out
    assert "UNDETECTED" not in out
