"""Engine chaos campaign: every injection recovers or fails typed."""

import pytest

from repro.robustness.chaos import (ChaosReport, format_chaos_reports,
                                    run_chaos_campaign)

EXPECTED_INJECTIONS = {
    "worker-crash-retry", "artifact-truncate", "envelope-bit-flip",
    "slow-task-timeout", "disk-full-write", "sigkill-resume",
    "torn-journal",
}


@pytest.fixture(scope="module")
def reports():
    return run_chaos_campaign(jobs=2)


def test_campaign_covers_every_injection_kind(reports):
    assert {r.injection for r in reports} == EXPECTED_INJECTIONS
    assert len(reports) >= 6  # the acceptance floor


def test_every_injection_recovers_or_fails_typed(reports):
    bad = [r for r in reports if not r.ok]
    assert not bad, format_chaos_reports(bad)


def test_sigkill_resume_is_byte_identical(reports):
    resume = next(r for r in reports if r.injection == "sigkill-resume")
    assert resume.ok
    assert "byte-identical" in resume.message
    assert "zero recompute" in resume.message
    assert "differential oracle clean" in resume.message


def test_expectations_split_recover_vs_typed(reports):
    by_name = {r.injection: r for r in reports}
    assert by_name["slow-task-timeout"].expected == "typed-failure"
    assert by_name["slow-task-timeout"].outcome == \
        "typed EmulationTimeout"
    recovery = EXPECTED_INJECTIONS - {"slow-task-timeout"}
    assert all(by_name[name].expected == "recover" for name in recovery)


def test_format_renders_summary_line(reports):
    text = format_chaos_reports(reports)
    assert "engine chaos campaign" in text
    assert f"{len(reports)}/{len(reports)} injections" in text


def test_format_flags_failures():
    text = format_chaos_reports([ChaosReport(
        injection="probe", description="d", expected="recover",
        outcome="hung", ok=False, message="deadline blown")])
    assert "NO" in text and "0/1" in text
