"""The typed error taxonomy: hierarchy and exit-code contract."""

from repro.emu.memory import EmulationFault
from repro.engine.recovery.retry import is_transient
from repro.robustness.errors import (ArtifactLockTimeout, CompileError,
                                     DeadlineExceededError,
                                     EmulationTimeout,
                                     FuzzFindingsError,
                                     LeaseFencedError,
                                     ModelDivergenceError,
                                     NativeBuildError,
                                     NativeEngineError,
                                     NativeKernelCrash,
                                     NativeParityError,
                                     NativeToolchainMissing,
                                     PassVerificationError,
                                     QuotaExceededError, ReproError,
                                     ServiceOverloadedError,
                                     TraceIntegrityError,
                                     WorkerLostError)

ALL = (ReproError, CompileError, PassVerificationError, EmulationTimeout,
       TraceIntegrityError, ModelDivergenceError)

#: every (class, exit code) pair the README table documents
DOCUMENTED = {
    ReproError: 10, CompileError: 11, PassVerificationError: 12,
    EmulationTimeout: 13, TraceIntegrityError: 14,
    ModelDivergenceError: 15, ArtifactLockTimeout: 17,
    FuzzFindingsError: 18, ServiceOverloadedError: 19,
    QuotaExceededError: 20, DeadlineExceededError: 21,
    NativeBuildError: 22, NativeToolchainMissing: 23,
    NativeParityError: 24, NativeKernelCrash: 25,
    WorkerLostError: 26, LeaseFencedError: 27,
}


def test_every_class_is_a_repro_error():
    for cls in DOCUMENTED:
        assert issubclass(cls, ReproError)


def test_exit_codes_are_distinct_and_documented():
    codes = {cls: cls.exit_code for cls in DOCUMENTED}
    assert len(set(codes.values())) == len(DOCUMENTED)
    assert codes == DOCUMENTED
    assert 16 not in codes.values()  # EmulationFault, mapped in cli


def test_transience_split_matches_the_readme_table():
    # NativeToolchainMissing / NativeKernelCrash are transient because
    # the supervisor demotes before raising: the retry lands on the
    # byte-identical Python engines.  Build and parity failures are
    # permanent facts about the artifact.
    # WorkerLostError is transient (the shard is simply reassigned);
    # LeaseFencedError is permanent by design — a fenced zombie must
    # claim *new* work, never retry its superseded lease.
    transient = {EmulationTimeout, TraceIntegrityError,
                 ArtifactLockTimeout, ServiceOverloadedError,
                 QuotaExceededError, NativeToolchainMissing,
                 NativeKernelCrash, WorkerLostError}
    for cls in DOCUMENTED:
        sample = cls("probe")
        assert is_transient(sample) == (cls in transient), cls


def test_service_errors_carry_retry_hints():
    shed = ServiceOverloadedError("full", retry_after=2.5,
                                  queue_depth=16)
    assert (shed.retry_after, shed.queue_depth) == (2.5, 16)
    quota = QuotaExceededError("slow down", tenant="alice",
                               retry_after=1.0, kind="rate")
    assert (quota.tenant, quota.kind) == ("alice", "rate")
    late = DeadlineExceededError("too late", deadline=10.0, elapsed=12.0)
    assert (late.deadline, late.elapsed) == (10.0, 12.0)


def test_timeout_is_also_an_emulation_fault():
    # Pre-existing handlers around run_program catch EmulationFault;
    # the watchdog's timeout must not slip past them.
    exc = EmulationTimeout("budget blown", steps=7, elapsed=1.5, budget=1.0)
    assert isinstance(exc, EmulationFault)
    assert (exc.steps, exc.elapsed, exc.budget) == (7, 1.5, 1.0)


def test_structured_fields_carry_context():
    exc = PassVerificationError("bad", pass_name="peephole",
                                function="main", artifact_path="/tmp/x")
    assert isinstance(exc, CompileError)
    assert (exc.pass_name, exc.function) == ("peephole", "main")
    assert exc.artifact_path == "/tmp/x"
    div = ModelDivergenceError("differs", workload="wc", model="cmov",
                               kind="output-stream")
    assert (div.workload, div.model, div.kind) == ("wc", "cmov",
                                                   "output-stream")


def test_native_errors_form_their_own_branch():
    for cls in (NativeBuildError, NativeToolchainMissing,
                NativeParityError, NativeKernelCrash):
        assert issubclass(cls, NativeEngineError)
    build = NativeBuildError("cc exploded", cc="gcc", stderr="boom",
                             so_path="/tmp/k.so")
    assert (build.cc, build.stderr, build.so_path) == \
        ("gcc", "boom", "/tmp/k.so")
    missing = NativeToolchainMissing("no cc", searched=("cc", "gcc"))
    assert missing.searched == ("cc", "gcc")
    parity = NativeParityError("diverged", expected="aa", actual="bb")
    assert (parity.expected, parity.actual) == ("aa", "bb")
    crash = NativeKernelCrash("died", signal=11, stage="canary")
    assert (crash.signal, crash.stage) == (11, "canary")
