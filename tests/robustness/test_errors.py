"""The typed error taxonomy: hierarchy and exit-code contract."""

from repro.emu.memory import EmulationFault
from repro.robustness.errors import (CompileError, EmulationTimeout,
                                     ModelDivergenceError,
                                     PassVerificationError, ReproError,
                                     TraceIntegrityError)

ALL = (ReproError, CompileError, PassVerificationError, EmulationTimeout,
       TraceIntegrityError, ModelDivergenceError)


def test_every_class_is_a_repro_error():
    for cls in ALL:
        assert issubclass(cls, ReproError)


def test_exit_codes_are_distinct_and_documented():
    codes = {cls: cls.exit_code for cls in ALL}
    assert len(set(codes.values())) == len(ALL)
    assert codes[ReproError] == 10
    assert codes[CompileError] == 11
    assert codes[PassVerificationError] == 12
    assert codes[EmulationTimeout] == 13
    assert codes[TraceIntegrityError] == 14
    assert codes[ModelDivergenceError] == 15


def test_timeout_is_also_an_emulation_fault():
    # Pre-existing handlers around run_program catch EmulationFault;
    # the watchdog's timeout must not slip past them.
    exc = EmulationTimeout("budget blown", steps=7, elapsed=1.5, budget=1.0)
    assert isinstance(exc, EmulationFault)
    assert (exc.steps, exc.elapsed, exc.budget) == (7, 1.5, 1.0)


def test_structured_fields_carry_context():
    exc = PassVerificationError("bad", pass_name="peephole",
                                function="main", artifact_path="/tmp/x")
    assert isinstance(exc, CompileError)
    assert (exc.pass_name, exc.function) == ("peephole", "main")
    assert exc.artifact_path == "/tmp/x"
    div = ModelDivergenceError("differs", workload="wc", model="cmov",
                               kind="output-stream")
    assert (div.workload, div.model, div.kind) == ("wc", "cmov",
                                                   "output-stream")
