"""The typed error taxonomy: hierarchy and exit-code contract."""

from repro.emu.memory import EmulationFault
from repro.engine.recovery.retry import is_transient
from repro.robustness.errors import (ArtifactLockTimeout, CompileError,
                                     DeadlineExceededError,
                                     EmulationTimeout,
                                     FuzzFindingsError,
                                     ModelDivergenceError,
                                     PassVerificationError,
                                     QuotaExceededError, ReproError,
                                     ServiceOverloadedError,
                                     TraceIntegrityError)

ALL = (ReproError, CompileError, PassVerificationError, EmulationTimeout,
       TraceIntegrityError, ModelDivergenceError)

#: every (class, exit code) pair the README table documents
DOCUMENTED = {
    ReproError: 10, CompileError: 11, PassVerificationError: 12,
    EmulationTimeout: 13, TraceIntegrityError: 14,
    ModelDivergenceError: 15, ArtifactLockTimeout: 17,
    FuzzFindingsError: 18, ServiceOverloadedError: 19,
    QuotaExceededError: 20, DeadlineExceededError: 21,
}


def test_every_class_is_a_repro_error():
    for cls in DOCUMENTED:
        assert issubclass(cls, ReproError)


def test_exit_codes_are_distinct_and_documented():
    codes = {cls: cls.exit_code for cls in DOCUMENTED}
    assert len(set(codes.values())) == len(DOCUMENTED)
    assert codes == DOCUMENTED
    assert 16 not in codes.values()  # EmulationFault, mapped in cli


def test_transience_split_matches_the_readme_table():
    transient = {EmulationTimeout, TraceIntegrityError,
                 ArtifactLockTimeout, ServiceOverloadedError,
                 QuotaExceededError}
    for cls in DOCUMENTED:
        sample = cls("probe")
        assert is_transient(sample) == (cls in transient), cls


def test_service_errors_carry_retry_hints():
    shed = ServiceOverloadedError("full", retry_after=2.5,
                                  queue_depth=16)
    assert (shed.retry_after, shed.queue_depth) == (2.5, 16)
    quota = QuotaExceededError("slow down", tenant="alice",
                               retry_after=1.0, kind="rate")
    assert (quota.tenant, quota.kind) == ("alice", "rate")
    late = DeadlineExceededError("too late", deadline=10.0, elapsed=12.0)
    assert (late.deadline, late.elapsed) == (10.0, 12.0)


def test_timeout_is_also_an_emulation_fault():
    # Pre-existing handlers around run_program catch EmulationFault;
    # the watchdog's timeout must not slip past them.
    exc = EmulationTimeout("budget blown", steps=7, elapsed=1.5, budget=1.0)
    assert isinstance(exc, EmulationFault)
    assert (exc.steps, exc.elapsed, exc.budget) == (7, 1.5, 1.0)


def test_structured_fields_carry_context():
    exc = PassVerificationError("bad", pass_name="peephole",
                                function="main", artifact_path="/tmp/x")
    assert isinstance(exc, CompileError)
    assert (exc.pass_name, exc.function) == ("peephole", "main")
    assert exc.artifact_path == "/tmp/x"
    div = ModelDivergenceError("differs", workload="wc", model="cmov",
                               kind="output-stream")
    assert (div.workload, div.model, div.kind) == ("wc", "cmov",
                                                   "output-stream")
