"""Trace integrity: clean traces pass, each corruption kind is caught."""

import copy

import pytest

from repro.emu.interpreter import run_program
from repro.ir.opcodes import OpCategory
from repro.robustness.errors import TraceIntegrityError
from repro.robustness.faults import CAMPAIGN_INPUTS
from repro.robustness.integrity import check_trace_integrity
from repro.toolchain import Model


def test_clean_traces_pass_for_every_model(campaign):
    for model in Model:
        check_trace_integrity(campaign.executions[model],
                              campaign.compiled[model].program)


def test_missing_trace_is_an_error(campaign):
    execution = run_program(campaign.compiled[Model.SUPERBLOCK].program,
                            inputs=CAMPAIGN_INPUTS, collect_trace=False)
    with pytest.raises(TraceIntegrityError):
        check_trace_integrity(execution,
                              campaign.compiled[Model.SUPERBLOCK].program)


def test_count_bookkeeping_mismatch(campaign):
    forged = copy.deepcopy(campaign.executions[Model.FULLPRED])
    forged.dynamic_count += 1
    with pytest.raises(TraceIntegrityError):
        check_trace_integrity(forged,
                              campaign.compiled[Model.FULLPRED].program)


def test_store_event_without_a_value(campaign):
    forged = copy.deepcopy(campaign.executions[Model.SUPERBLOCK])
    idx = next(i for i, ev in enumerate(forged.trace)
               if ev.executed and ev.inst.cat is OpCategory.STORE)
    forged.trace[idx] = forged.trace[idx]._replace(value=None)
    with pytest.raises(TraceIntegrityError):
        check_trace_integrity(forged,
                              campaign.compiled[Model.SUPERBLOCK].program)


def test_taken_flag_on_non_control_event(campaign):
    forged = copy.deepcopy(campaign.executions[Model.SUPERBLOCK])
    idx = next(i for i, ev in enumerate(forged.trace)
               if ev.executed and ev.inst.cat is OpCategory.ALU)
    forged.trace[idx] = forged.trace[idx]._replace(taken=True)
    with pytest.raises(TraceIntegrityError):
        check_trace_integrity(forged,
                              campaign.compiled[Model.SUPERBLOCK].program)


def test_result_method_delegates(campaign):
    execution = campaign.executions[Model.FULLPRED]
    execution.verify_integrity(campaign.compiled[Model.FULLPRED].program)
    forged = copy.deepcopy(execution)
    forged.trace.pop()
    with pytest.raises(TraceIntegrityError):
        forged.verify_integrity(campaign.compiled[Model.FULLPRED].program)
