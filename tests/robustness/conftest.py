"""Shared fixtures: the fault campaign's kernel, compiled and emulated.

Compiling the campaign kernel for all three models and recording traces
is the expensive part of every robustness test, so it is done once per
session and the artifacts shared read-only (tests that corrupt anything
must deepcopy first).
"""

from types import SimpleNamespace

import pytest

from repro.analysis.profile import Profile
from repro.emu.interpreter import run_program
from repro.machine.descriptor import scalar_machine
from repro.robustness.faults import CAMPAIGN_INPUTS, CAMPAIGN_SOURCE
from repro.toolchain import Model, compile_for_model, frontend


@pytest.fixture(scope="session")
def campaign():
    base = frontend(CAMPAIGN_SOURCE)
    profile = Profile.collect(base, inputs=CAMPAIGN_INPUTS)
    machine = scalar_machine()
    compiled = {model: compile_for_model(base, model, profile, machine)
                for model in Model}
    executions = {model: run_program(compiled[model].program,
                                     inputs=CAMPAIGN_INPUTS,
                                     collect_trace=True)
                  for model in Model}
    return SimpleNamespace(base=base, profile=profile, machine=machine,
                           compiled=compiled, executions=executions)
