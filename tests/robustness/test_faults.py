"""The fault-injection campaign: every corruption class must be caught
by exactly the checker that claims to guard that layer."""

import pytest

from repro.robustness.faults import format_fault_reports, run_fault_campaign

EXPECTED_CHECKER = {
    "ir-operand": "VerificationError",
    "predicate-value": "ModelDivergenceError",
    "trace-entry": "TraceIntegrityError",
}


@pytest.fixture(scope="module")
def reports():
    return run_fault_campaign()


def test_every_injection_is_caught(reports):
    undetected = [r.fault for r in reports if r.caught_by is None]
    assert not undetected, f"corruptions went undetected: {undetected}"


def test_caught_by_the_intended_checker(reports):
    wrong = [(r.fault, r.expected, r.caught_by)
             for r in reports if not r.ok]
    assert not wrong, f"wrong checker fired: {wrong}"


def test_all_three_corruption_classes_exercised(reports):
    classes = {r.corruption for r in reports}
    assert classes == set(EXPECTED_CHECKER)
    # and the expected checker per class is the documented one
    for r in reports:
        assert r.expected == EXPECTED_CHECKER[r.corruption]


def test_campaign_is_not_trivial(reports):
    # At least: bad target, bad operand, bad pdests, two ISA-subset
    # violations, three trace corruptions, one predicate corruption.
    assert len(reports) >= 9


def test_report_formatting(reports):
    text = format_fault_reports(reports)
    assert f"{len(reports)}/{len(reports)} corruption classes" in text
    for r in reports:
        assert r.fault in text
