"""CLI recovery surface: cache fsck, friendly empty-store messages,
figure resume, and the chaos selftest flag."""

import json

import pytest

from repro.cli import build_parser, main
from repro.engine.keys import stable_digest
from repro.engine.store import ArtifactStore


# ----- cache stats/clear on missing or empty stores (satellite) -------------

def test_cache_stats_missing_dir_is_friendly(tmp_path, capsys):
    missing = str(tmp_path / "never-created")
    assert main(["cache", "stats", "--cache-dir", missing]) == 0
    out = capsys.readouterr().out
    assert "no artifact store" in out
    assert "Traceback" not in out


def test_cache_clear_missing_dir_is_friendly(tmp_path, capsys):
    missing = str(tmp_path / "never-created")
    assert main(["cache", "clear", "--cache-dir", missing]) == 0
    assert "no artifact store" in capsys.readouterr().out


def test_cache_stats_empty_store_is_friendly(tmp_path, capsys):
    empty = tmp_path / "empty-store"
    empty.mkdir()
    assert main(["cache", "stats", "--cache-dir", str(empty)]) == 0
    out = capsys.readouterr().out
    assert "empty" in out and "repro report" in out


# ----- cache fsck -----------------------------------------------------------

def _populated_store(tmp_path):
    store = ArtifactStore(tmp_path)
    for i in range(3):
        store.put("stats", stable_digest("cli-fsck", str(i)), {"i": i})
    return store


def test_cache_fsck_clean_store_exits_zero(tmp_path, capsys):
    _populated_store(tmp_path)
    assert main(["cache", "fsck", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "verdict        : clean" in out
    assert "3 artifacts" in out.replace("scanned        : ", "")


def test_cache_fsck_corrupt_store_exits_nonzero(tmp_path, capsys):
    store = _populated_store(tmp_path)
    path = store._path("stats", stable_digest("cli-fsck", "0"))
    path.write_bytes(path.read_bytes()[:12])
    assert main(["cache", "fsck", "--cache-dir", str(tmp_path)]) == 1
    assert "CORRUPT" in capsys.readouterr().out


def test_cache_fsck_repair_quarantines_and_exits_zero(tmp_path, capsys):
    store = _populated_store(tmp_path)
    path = store._path("stats", stable_digest("cli-fsck", "0"))
    path.write_bytes(path.read_bytes()[:12])
    assert main(["cache", "fsck", "--repair",
                 "--cache-dir", str(tmp_path)]) == 0
    assert "quarantined" in capsys.readouterr().out
    assert main(["cache", "fsck", "--cache-dir", str(tmp_path)]) == 0


# ----- run ids and resume ---------------------------------------------------

def test_bench_announces_run_id_and_summary(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["bench", "wc", "--scale", "0.25",
                 "--cache-dir", cache, "--run-id", "R-cli-test"]) == 0
    err = capsys.readouterr().err
    assert "run id: R-cli-test" in err
    assert "tasks completed" in err
    journal = tmp_path / "cache" / "runs" / "R-cli-test.jsonl"
    records = [json.loads(line)
               for line in journal.read_text().splitlines()]
    assert records[0]["type"] == "run-start"
    assert records[-1]["type"] == "run-finish" and records[-1]["ok"]


def test_bench_resume_reports_zero_recompute(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["bench", "wc", "--scale", "0.25",
                 "--cache-dir", cache, "--run-id", "R-cli-resume"]) == 0
    first = capsys.readouterr()
    assert main(["bench", "wc", "--scale", "0.25",
                 "--cache-dir", cache, "--resume", "R-cli-resume"]) == 0
    second = capsys.readouterr()
    assert "zero recompute" in second.err
    # Byte-identical figures on resume.
    assert second.out == first.out


def test_resume_unknown_run_id_exits_typed(tmp_path, capsys):
    code = main(["bench", "wc", "--scale", "0.25",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--resume", "R-never-ran"])
    assert code == 10
    err = capsys.readouterr().err
    assert "error[ReproError]" in err and "unknown run id" in err


# ----- parser surface -------------------------------------------------------

def test_figures_is_a_report_alias():
    parser = build_parser()
    args = parser.parse_args(["figures", "--resume", "RX", "--scale",
                              "0.25"])
    assert args.func.__name__ == "_cmd_report"
    assert args.resume == "RX"


@pytest.mark.parametrize("argv", [
    ["report", "--resume", "RX"],
    ["report", "--run-id", "RX"],
    ["bench", "wc", "--retries", "5"],
    ["cache", "fsck", "--repair"],
    ["selftest", "--chaos", "--jobs", "2"],
])
def test_recovery_flags_parse(argv):
    args = build_parser().parse_args(argv)
    assert args.command == argv[0]


def test_exit_17_documented_for_lock_timeouts():
    from repro.robustness.errors import ArtifactLockTimeout
    assert ArtifactLockTimeout.exit_code == 17
