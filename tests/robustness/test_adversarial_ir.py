"""Adversarial IR: every ISA-subset rule must actually reject violators."""

import pytest

from repro.ir import (Function, ISALevel, Imm, Instruction, Opcode, PReg,
                      Program, VReg, VerificationError, verify_program)
from repro.ir.instruction import PredDest, PType


def _program(*insts: Instruction) -> Program:
    prog = Program()
    fn = Function("main")
    prog.add_function(fn)
    block = fn.new_block("entry")
    for inst in insts:
        block.append(inst)
    block.append(Instruction(Opcode.RET, srcs=(Imm(0),)))
    return prog


def _preddef(**kwargs) -> Instruction:
    return Instruction(Opcode.PRED_LT, srcs=(Imm(1), Imm(2)),
                       pdests=(PredDest(PReg(1), PType.U),), **kwargs)


def test_guarded_instruction_only_at_full():
    prog = _program(Instruction(Opcode.ADD, dest=VReg(0),
                                srcs=(Imm(1), Imm(2)), pred=PReg(1)))
    verify_program(prog, ISALevel.FULL)
    for level in (ISALevel.BASELINE, ISALevel.PARTIAL):
        with pytest.raises(VerificationError):
            verify_program(prog, level)


def test_predicate_define_only_at_full():
    prog = _program(_preddef())
    verify_program(prog, ISALevel.FULL)
    for level in (ISALevel.BASELINE, ISALevel.PARTIAL):
        with pytest.raises(VerificationError):
            verify_program(prog, level)


def test_predicate_register_operand_only_at_full():
    prog = _program(Instruction(Opcode.ADD, dest=VReg(0),
                                srcs=(PReg(1), Imm(1))))
    verify_program(prog, ISALevel.FULL)
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.PARTIAL)


def test_cmov_rejected_at_baseline_allowed_at_partial():
    prog = _program(Instruction(Opcode.CMOV, dest=VReg(0),
                                srcs=(VReg(1), Imm(7))))
    verify_program(prog, ISALevel.PARTIAL)
    verify_program(prog, ISALevel.FULL)
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.BASELINE)


def test_preddef_needs_one_or_two_pdests():
    pd = PredDest(PReg(1), PType.U)
    prog = _program(Instruction(Opcode.PRED_LT, srcs=(Imm(1), Imm(2)),
                                pdests=(pd,) * 3))
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.FULL)


def test_preddef_rejects_duplicate_destination_register():
    pdests = (PredDest(PReg(1), PType.U), PredDest(PReg(1), PType.U_BAR))
    prog = _program(Instruction(Opcode.PRED_LT, srcs=(Imm(1), Imm(2)),
                                pdests=pdests))
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.FULL)


def test_pdests_on_non_define_rejected():
    prog = _program(Instruction(Opcode.ADD, dest=VReg(0),
                                srcs=(Imm(1), Imm(2)),
                                pdests=(PredDest(PReg(1), PType.U),)))
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.FULL)


def test_speculative_store_rejected():
    prog = _program(Instruction(Opcode.STORE,
                                srcs=(Imm(0), Imm(0), Imm(1)),
                                speculative=True))
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.FULL)


def test_garbage_operand_rejected():
    inst = Instruction(Opcode.ADD, dest=VReg(0), srcs=(Imm(1), Imm(2)))
    inst.srcs = ("garbage", Imm(2))
    with pytest.raises(VerificationError):
        verify_program(_program(inst), ISALevel.FULL)


def test_compiled_models_respect_their_own_subsets(campaign):
    """Each real compiled program verifies at its level — and full
    predication output genuinely exercises the machinery the lower
    levels forbid."""
    from repro.toolchain import Model

    for model, comp in campaign.compiled.items():
        verify_program(comp.program, model.isa_level)
    with pytest.raises(VerificationError):
        verify_program(campaign.compiled[Model.FULLPRED].program,
                       ISALevel.PARTIAL)
    with pytest.raises(VerificationError):
        verify_program(campaign.compiled[Model.CMOV].program,
                       ISALevel.BASELINE)
