"""Emulation watchdog: budgets, heartbeats, and the step limit."""

import pytest

from repro.emu.interpreter import StepLimitExceeded, run_program
from repro.emu.memory import EmulationFault
from repro.robustness.errors import EmulationTimeout, ReproError
from repro.robustness.faults import CAMPAIGN_INPUTS
from repro.robustness.watchdog import EmulationWatchdog
from repro.toolchain import Model


def test_heartbeats_are_a_bounded_ring():
    wd = EmulationWatchdog(max_heartbeats=4)
    for step in range(1, 10):
        wd.beat(step * 100)
    assert len(wd.heartbeats) <= 4
    # Older heartbeats are discarded; the latest survives.
    assert wd.heartbeats[-1][0] == 900


def test_beat_raises_over_budget():
    wd = EmulationWatchdog(wall_clock_budget=1.0)
    wd.start()
    wd._start -= 5.0  # pretend five wall-clock seconds have passed
    with pytest.raises(EmulationTimeout) as exc:
        wd.beat(1234)
    assert exc.value.steps == 1234
    assert exc.value.elapsed > exc.value.budget == 1.0
    assert isinstance(exc.value, ReproError)
    assert isinstance(exc.value, EmulationFault)


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        EmulationWatchdog(interval=0)


def test_interpreter_drives_the_watchdog(campaign):
    # A negative budget is already blown at the first heartbeat, so the
    # test never depends on clock resolution.
    wd = EmulationWatchdog(wall_clock_budget=-1.0, interval=1)
    with pytest.raises(EmulationTimeout):
        run_program(campaign.compiled[Model.SUPERBLOCK].program,
                    inputs=CAMPAIGN_INPUTS, watchdog=wd)
    assert wd.heartbeats  # the timeout report shows progress


def test_heartbeats_recorded_on_clean_run(campaign):
    wd = EmulationWatchdog(interval=64)
    execution = run_program(campaign.compiled[Model.SUPERBLOCK].program,
                            inputs=CAMPAIGN_INPUTS, watchdog=wd)
    assert execution.heartbeats
    steps = [s for s, _ in execution.heartbeats]
    assert steps == sorted(steps)
    assert steps[-1] <= execution.dynamic_count
    assert execution.wall_time_seconds > 0.0


def test_step_limit_still_enforced(campaign):
    with pytest.raises(StepLimitExceeded):
        run_program(campaign.compiled[Model.SUPERBLOCK].program,
                    inputs=CAMPAIGN_INPUTS, max_steps=10)


def test_streaming_sink_time_charged_to_budget(campaign):
    """A slow streaming consumer must be charged against the budget.

    The interpreter's step-count cadence alone cannot see wall time
    burned inside ``sink`` calls: with the beat interval pushed beyond
    the kernel's dynamic length, only the per-flush beat can fire.
    Regression test for the streaming path hanging past its budget
    while a consumer stalls.
    """
    from repro.fastpath.interp import run_program_fast

    def stalling_sink(_cols):
        import time
        time.sleep(0.02)

    wd = EmulationWatchdog(wall_clock_budget=0.01, interval=1 << 30)
    with pytest.raises(EmulationTimeout):
        run_program_fast(campaign.compiled[Model.SUPERBLOCK].program,
                         inputs=CAMPAIGN_INPUTS, watchdog=wd,
                         sink=stalling_sink, chunk_events=16)
    assert wd.heartbeats  # the flush beats left a progress trail


def test_streaming_watchdog_quiet_on_healthy_sink(campaign):
    from repro.fastpath.interp import run_program_fast

    chunks = []
    wd = EmulationWatchdog(wall_clock_budget=60.0, interval=1 << 30)
    execution = run_program_fast(
        campaign.compiled[Model.SUPERBLOCK].program,
        inputs=CAMPAIGN_INPUTS, watchdog=wd, sink=chunks.append,
        chunk_events=64)
    assert chunks
    assert execution.heartbeats  # flush beats recorded progress
