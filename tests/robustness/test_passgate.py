"""Pass gates: paranoid verification, IR artifacts, rollback."""

import copy
import os

import pytest

from repro.ir import Imm, Instruction, Opcode, VReg
from repro.ir.verifier import ISALevel, verify_function
from repro.robustness.errors import CompileError, PassVerificationError
from repro.robustness.passgate import PassGate
from repro.toolchain import Model, ToolchainOptions, compile_for_model


def _append_after_terminator(fn) -> None:
    # The last block ends with ret; anything after it is invalid IR.
    fn.blocks[-1].append(Instruction(Opcode.MOV, dest=fn.new_vreg(),
                                     srcs=(Imm(1),)))


def test_paranoid_names_the_pass_and_dumps_ir(campaign, tmp_path):
    program = copy.deepcopy(campaign.compiled[Model.FULLPRED].program)
    gate = PassGate(program, paranoid=True, artifact_dir=str(tmp_path),
                    model="fullpred")
    fn = program.main
    with pytest.raises(PassVerificationError) as exc:
        gate.run(fn, "evil-pass", lambda: _append_after_terminator(fn))
    err = exc.value
    assert err.pass_name == "evil-pass"
    assert err.function == fn.name
    assert err.artifact_path and os.path.exists(err.artifact_path)
    snapshot = open(err.artifact_path).read()
    assert "evil-pass" in snapshot
    assert fn.name in snapshot


def test_unparanoid_gate_lets_bad_ir_through(campaign):
    program = copy.deepcopy(campaign.compiled[Model.FULLPRED].program)
    gate = PassGate(program, paranoid=False)
    fn = program.main
    gate.run(fn, "evil-pass", lambda: _append_after_terminator(fn))
    assert not gate.degradations  # nothing checked, nothing caught


def test_rollback_restores_the_function(campaign, tmp_path):
    program = copy.deepcopy(campaign.compiled[Model.FULLPRED].program)
    gate = PassGate(program, paranoid=True, rollback=True,
                    artifact_dir=str(tmp_path), model="fullpred")
    fn = program.main
    before = sum(len(b.instructions) for b in fn.blocks)
    result = gate.run(fn, "evil-pass",
                      lambda: _append_after_terminator(fn))
    assert result is None
    assert sum(len(b.instructions) for b in fn.blocks) == before
    verify_function(fn, program, ISALevel.FULL)
    (deg,) = gate.degradations
    assert deg.pass_name == "evil-pass"
    assert deg.function == fn.name


def test_crash_inside_a_pass_becomes_compile_error(campaign, tmp_path):
    program = copy.deepcopy(campaign.compiled[Model.FULLPRED].program)
    gate = PassGate(program, artifact_dir=str(tmp_path))
    fn = program.main

    def explode():
        raise RuntimeError("boom")

    with pytest.raises(CompileError) as exc:
        gate.run(fn, "exploding-pass", explode)
    assert exc.value.pass_name == "exploding-pass"
    assert not isinstance(exc.value, PassVerificationError)


def test_crash_with_rollback_degrades(campaign, tmp_path):
    program = copy.deepcopy(campaign.compiled[Model.FULLPRED].program)
    gate = PassGate(program, rollback=True, artifact_dir=str(tmp_path))
    fn = program.main

    def explode():
        raise RuntimeError("boom")

    assert gate.run(fn, "exploding-pass", explode) is None
    (deg,) = gate.degradations
    assert "boom" in deg.error


def test_paranoid_toolchain_compiles_cleanly(campaign, tmp_path):
    options = ToolchainOptions(paranoid=True, rollback=True,
                               artifact_dir=str(tmp_path))
    compiled = compile_for_model(campaign.base, Model.FULLPRED,
                                 campaign.profile, campaign.machine,
                                 options)
    assert not compiled.degradations
    assert not list(tmp_path.iterdir())


def test_artifact_names_are_uniquified(campaign, tmp_path):
    program = copy.deepcopy(campaign.compiled[Model.FULLPRED].program)
    gate = PassGate(program, paranoid=True, rollback=True,
                    artifact_dir=str(tmp_path), model="fullpred")
    fn = program.main
    for _ in range(2):
        gate.run(fn, "evil-pass", lambda: _append_after_terminator(fn))
    paths = {d.artifact_path for d in gate.degradations}
    assert len(paths) == 2 and None not in paths
