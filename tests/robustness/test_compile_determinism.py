"""Cross-process compile determinism.

A resumed (or merely repeated) figure run executes in a fresh process
with a fresh random ``PYTHONHASHSEED``; byte-identical resume therefore
requires that compilation decisions never depend on set iteration
order.  The ``sc`` workload at scale 0.2 ties two blocks on the
hyperblock resource heuristic, which historically made its CMOV and
FULLPRED cycle counts a per-process coin flip.
"""

import os
import subprocess
import sys

_PROBE = """
from repro.toolchain import Model
from repro.machine.descriptor import fig8_machine
from repro.workloads.base import all_workloads
from repro.engine.stages import PipelineContext

w = [x for x in all_workloads() if x.name == "sc"][0]
ctx = PipelineContext(scale=0.2, store=None)
for model in (Model.SUPERBLOCK, Model.CMOV, Model.FULLPRED):
    s = ctx.run_summary(w, model, fig8_machine())
    print(model.name, s.stats.cycles)
"""


def _cycles_under_seed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p) or "src"
    result = subprocess.run([sys.executable, "-c", _PROBE], env=env,
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_compiled_cycles_identical_across_hash_seeds():
    assert _cycles_under_seed("1") == _cycles_under_seed("2")
