"""Native chaos campaign: every kernel injection degrades cleanly."""

import pytest

from repro.robustness.chaos import (format_chaos_reports,
                                    run_native_chaos_campaign)

EXPECTED_INJECTIONS = {
    "kernel-so-corrupt", "kernel-cc-vanish", "kernel-segv",
    "kernel-stale-cc", "kernel-parity-mismatch", "kernel-midrun-fault",
}


@pytest.fixture(scope="module")
def reports():
    return run_native_chaos_campaign(jobs=2)


def test_campaign_covers_every_injection_kind(reports):
    assert {r.injection for r in reports} == EXPECTED_INJECTIONS
    assert len(reports) >= 5  # the acceptance floor


def test_every_injection_recovers_or_fails_typed(reports):
    bad = [r for r in reports if not r.ok]
    assert not bad, format_chaos_reports(bad)


def test_degraded_output_is_byte_identical(reports):
    for r in reports:
        if r.outcome == "skipped":
            continue
        assert "byte-identical" in r.message, r.injection


def test_typed_failures_name_their_taxonomy_class(reports):
    by_name = {r.injection: r for r in reports}
    vanish = by_name["kernel-cc-vanish"]
    assert vanish.ok
    assert "NativeToolchainMissing" in vanish.message
    parity = by_name["kernel-parity-mismatch"]
    if parity.outcome != "skipped":
        assert "NativeParityError" in parity.message
        assert "quarantined" in parity.message


def test_supervisor_state_is_restored_after_the_campaign(reports):
    from repro.fastpath import supervisor
    state = supervisor._get_state()
    assert state.injection is None
    # The campaign ran entirely against throwaway caches and reset the
    # process state afterwards: the ladder is back at its env-resolved
    # top rung.
    assert supervisor.current_engine() == \
        ("native" if supervisor.native_enabled() else "jitc")
