"""Property-based checks of arithmetic semantics (32-bit wrap, C
division) against Python reference models."""

from hypothesis import given
from hypothesis import strategies as st

from repro.emu import run_program
from repro.ir import (Function, IRBuilder, Imm, Instruction, Opcode,
                      Program, VReg)

I32 = st.integers(-2**31, 2**31 - 1)


def _binop_result(op: Opcode, a: int, b: int):
    prog = Program()
    fn = Function("main")
    prog.add_function(fn)
    builder = IRBuilder(fn, fn.new_block("entry"))
    dest = fn.new_vreg()
    builder.emit(Instruction(op, dest=dest, srcs=(Imm(a), Imm(b))))
    builder.ret(dest)
    return run_program(prog).return_value


def _w32(x: int) -> int:
    return ((x + 2**31) % 2**32) - 2**31


@given(I32, I32)
def test_add_wraps(a, b):
    assert _binop_result(Opcode.ADD, a, b) == _w32(a + b)


@given(I32, I32)
def test_sub_wraps(a, b):
    assert _binop_result(Opcode.SUB, a, b) == _w32(a - b)


@given(I32, I32)
def test_mul_wraps(a, b):
    assert _binop_result(Opcode.MUL, a, b) == _w32(a * b)


@given(I32, I32.filter(lambda v: v != 0))
def test_div_truncates_toward_zero(a, b):
    expected = _w32(int(a / b))
    assert _binop_result(Opcode.DIV, a, b) == expected


@given(I32, I32.filter(lambda v: v != 0))
def test_rem_matches_c(a, b):
    expected = _w32(a - int(a / b) * b)
    assert _binop_result(Opcode.REM, a, b) == expected


@given(I32, st.integers(0, 31))
def test_shifts(a, s):
    assert _binop_result(Opcode.SHL, a, s) == _w32(a << s)
    assert _binop_result(Opcode.SHR, a, s) == a >> s  # arithmetic


@given(I32, I32)
def test_bitwise(a, b):
    assert _binop_result(Opcode.AND, a, b) == (a & b)
    assert _binop_result(Opcode.OR, a, b) == (a | b)
    assert _binop_result(Opcode.XOR, a, b) == (a ^ b)


@given(st.integers(0, 1), st.integers(0, 1))
def test_logical_and_not_or_not(a, b):
    assert _binop_result(Opcode.AND_NOT, a, b) == int(bool(a) and not b)
    assert _binop_result(Opcode.OR_NOT, a, b) == int(bool(a) or not b)


@given(I32, I32)
def test_comparisons(a, b):
    assert _binop_result(Opcode.CMP_LT, a, b) == int(a < b)
    assert _binop_result(Opcode.CMP_GE, a, b) == int(a >= b)
    assert _binop_result(Opcode.CMP_EQ, a, b) == int(a == b)


FLOATS = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e6, max_value=1e6)


@given(FLOATS, FLOATS)
def test_float_add_mul(a, b):
    import pytest
    assert _binop_result(Opcode.FADD, a, b) == pytest.approx(a + b)
    assert _binop_result(Opcode.FMUL, a, b) == pytest.approx(a * b)
