"""Memory model tests: layout, faults, speculative silence."""

import pytest

from repro.emu.memory import (EmulationFault, GLOBAL_BASE, Memory,
                              SAFE_ADDR, layout_globals)
from repro.ir import GlobalVar, Program


def test_word_roundtrip_signed():
    mem = Memory()
    mem.store_word(GLOBAL_BASE, -12345)
    assert mem.load_word(GLOBAL_BASE) == -12345
    mem.store_word(GLOBAL_BASE, 0x7FFFFFFF)
    assert mem.load_word(GLOBAL_BASE) == 0x7FFFFFFF


def test_word_wraps_to_32_bits():
    mem = Memory()
    mem.store_word(GLOBAL_BASE, 0xFFFFFFFF)
    assert mem.load_word(GLOBAL_BASE) == -1


def test_byte_roundtrip():
    mem = Memory()
    mem.store_byte(GLOBAL_BASE, 300)
    assert mem.load_byte(GLOBAL_BASE) == 44


def test_float_roundtrip():
    mem = Memory()
    mem.store_float(GLOBAL_BASE, 3.14159)
    assert mem.load_float(GLOBAL_BASE) == pytest.approx(3.14159)


def test_low_addresses_fault():
    mem = Memory()
    with pytest.raises(EmulationFault):
        mem.load_word(0)
    with pytest.raises(EmulationFault):
        mem.store_word(4, 1)
    with pytest.raises(EmulationFault):
        mem.load_byte(31)


def test_out_of_range_faults():
    mem = Memory(size=1024)
    with pytest.raises(EmulationFault):
        mem.load_word(1022)


def test_speculative_loads_are_silent():
    mem = Memory(size=1024)
    assert mem.load_word(0, speculative=True) == 0
    assert mem.load_byte(4, speculative=True) == 0
    assert mem.load_float(2000, speculative=True) == 0.0


def test_safe_addr_is_writable():
    """$safe_addr must absorb nullified stores (paper Figure 3)."""
    mem = Memory()
    mem.store_word(SAFE_ADDR, 999)
    assert mem.load_word(SAFE_ADDR) == 999


def test_stack_allocation():
    mem = Memory(size=4096)
    a = mem.alloc_stack(100)
    b = mem.alloc_stack(8)
    assert b < a
    assert a % 8 == 0 and b % 8 == 0
    mem.free_stack(8)
    c = mem.alloc_stack(8)
    assert c == b


def test_stack_overflow():
    mem = Memory(size=256)
    with pytest.raises(EmulationFault):
        for _ in range(100):
            mem.alloc_stack(64)


def test_layout_globals_alignment_and_inputs():
    prog = Program()
    prog.add_global(GlobalVar("a", 1, 3))      # 3 bytes
    prog.add_global(GlobalVar("b", 4, 2))      # needs 8-alignment
    prog.add_global(GlobalVar("f", 8, 1, is_float=True))
    mem = Memory()
    layout = layout_globals(prog, mem, inputs={"a": [1, 2, 3],
                                               "b": [10, -20],
                                               "f": [2.5]})
    assert layout["a"] == GLOBAL_BASE
    assert layout["b"] % 8 == 0
    assert mem.load_byte(layout["a"] + 2) == 3
    assert mem.load_word(layout["b"] + 4) == -20
    assert mem.load_float(layout["f"]) == 2.5


def test_layout_initializers_from_program():
    prog = Program()
    prog.add_global(GlobalVar("n", 4, 1, init=[7]))
    mem = Memory()
    layout = layout_globals(prog, mem)
    assert mem.load_word(layout["n"]) == 7


def test_oversized_initializer_rejected():
    prog = Program()
    prog.add_global(GlobalVar("n", 4, 1))
    mem = Memory()
    with pytest.raises(EmulationFault):
        layout_globals(prog, mem, inputs={"n": [1, 2]})
