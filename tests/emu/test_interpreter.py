"""Interpreter semantics: predication, cmov/select, traces, limits."""

import pytest

from repro.emu import (EmulationFault, StepLimitExceeded, run_program)
from repro.ir import (Function, IRBuilder, Imm, Instruction, Opcode,
                      PReg, PredDest, Program, PType, VReg)


def build(fn_body):
    """Make a one-function program; fn_body(builder, fn) must emit ret."""
    prog = Program()
    fn = Function("main")
    prog.add_function(fn)
    builder = IRBuilder(fn, fn.new_block("entry"))
    fn_body(builder, fn)
    return prog


def test_guarded_instruction_suppressed():
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(1), Imm(2), (PredDest(p, PType.U),))
        dest = b.mov(Imm(5))
        b.emit(Instruction(Opcode.MOV, dest=dest, srcs=(Imm(99),),
                           pred=p))
        b.ret(dest)

    result = run_program(build(body))
    assert result.return_value == 5
    assert result.suppressed_count == 1


def test_guarded_instruction_executes_when_true():
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(2), Imm(2), (PredDest(p, PType.U),))
        dest = b.mov(Imm(5))
        b.emit(Instruction(Opcode.MOV, dest=dest, srcs=(Imm(99),),
                           pred=p))
        b.ret(dest)

    result = run_program(build(body))
    assert result.return_value == 99
    assert result.suppressed_count == 0


def test_two_dest_pred_define():
    def body(b, fn):
        p1, p2 = fn.new_preg(), fn.new_preg()
        b.pred_define("lt", Imm(1), Imm(5),
                      (PredDest(p1, PType.U), PredDest(p2, PType.U_BAR)))
        r = b.mov(Imm(0))
        b.emit(Instruction(Opcode.MOV, dest=r, srcs=(Imm(1),), pred=p1))
        b.emit(Instruction(Opcode.MOV, dest=r, srcs=(Imm(2),), pred=p2))
        b.ret(r)

    assert run_program(build(body)).return_value == 1


def test_pred_clear_resets_everything():
    def body(b, fn):
        p = fn.new_preg()
        b.pred_define("eq", Imm(0), Imm(0), (PredDest(p, PType.U),))
        b.pred_clear()
        r = b.mov(Imm(7))
        b.emit(Instruction(Opcode.MOV, dest=r, srcs=(Imm(1),), pred=p))
        b.ret(r)

    assert run_program(build(body)).return_value == 7


def test_pred_set_enables_everything():
    def body(b, fn):
        p = fn.new_preg()
        b.block.append(Instruction(Opcode.PRED_SET))
        r = b.mov(Imm(7))
        b.emit(Instruction(Opcode.MOV, dest=r, srcs=(Imm(1),), pred=p))
        b.ret(r)

    assert run_program(build(body)).return_value == 1


def test_or_defines_accumulate():
    def body(b, fn):
        p = fn.new_preg()
        b.pred_clear()
        b.pred_define("eq", Imm(1), Imm(2), (PredDest(p, PType.OR),))
        b.pred_define("eq", Imm(3), Imm(3), (PredDest(p, PType.OR),))
        b.pred_define("eq", Imm(4), Imm(5), (PredDest(p, PType.OR),))
        r = b.mov(Imm(0))
        b.emit(Instruction(Opcode.MOV, dest=r, srcs=(Imm(1),), pred=p))
        b.ret(r)

    assert run_program(build(body)).return_value == 1


def test_cmov_and_cmov_com():
    def body(b, fn):
        flag = b.cmp("gt", Imm(5), Imm(3))     # 1
        a = b.mov(Imm(10))
        b.cmov(a, Imm(20), flag)               # moves: a = 20
        c = b.mov(Imm(30))
        b.cmov(c, Imm(40), flag, complement=True)  # suppressed
        s = b.add(a, c)
        b.ret(s)

    assert run_program(build(body)).return_value == 50


def test_select():
    def body(b, fn):
        flag = b.cmp("lt", Imm(5), Imm(3))     # 0
        dest = fn.new_vreg()
        b.select(dest, Imm(111), Imm(222), flag)
        b.ret(dest)

    assert run_program(build(body)).return_value == 222


def test_and_not_or_not_are_logical():
    def body(b, fn):
        r1 = fn.new_vreg()
        b.emit(Instruction(Opcode.AND_NOT, dest=r1, srcs=(Imm(1), Imm(0))))
        r2 = fn.new_vreg()
        b.emit(Instruction(Opcode.AND_NOT, dest=r2, srcs=(Imm(1), Imm(1))))
        r3 = fn.new_vreg()
        b.emit(Instruction(Opcode.OR_NOT, dest=r3, srcs=(Imm(0), Imm(0))))
        r4 = fn.new_vreg()
        b.emit(Instruction(Opcode.OR_NOT, dest=r4, srcs=(Imm(0), Imm(1))))
        total = b.add(b.add(r1, r2), b.add(r3, r4))
        b.ret(total)

    # 1&!0=1, 1&!1=0, 0|!0=1, 0|!1=0
    assert run_program(build(body)).return_value == 2


def test_speculative_div_by_zero_silent():
    def body(b, fn):
        dest = fn.new_vreg()
        b.emit(Instruction(Opcode.DIV, dest=dest, srcs=(Imm(8), Imm(0)),
                           speculative=True))
        b.ret(dest)

    assert run_program(build(body)).return_value == 0


def test_nonspeculative_div_by_zero_faults():
    def body(b, fn):
        dest = fn.new_vreg()
        b.emit(Instruction(Opcode.DIV, dest=dest, srcs=(Imm(8), Imm(0))))
        b.ret(dest)

    with pytest.raises(EmulationFault):
        run_program(build(body))


def test_trace_records_branches_and_memory():
    def body(b, fn):
        b.store(b.global_addr("g"), Imm(0), Imm(42))
        v = b.load(b.global_addr("g"), Imm(0))
        b.beq(v, Imm(42), "yes")
        b.ret(Imm(0))
        b.set_block(fn.new_block("yes"))
        b.ret(Imm(1))

    prog = build(lambda b, fn: None)  # placeholder to get structure
    prog = Program()
    from repro.ir import Function, GlobalVar
    fn = Function("main")
    prog.add_function(fn)
    prog.add_global(GlobalVar("g", 4, 1))
    b = IRBuilder(fn, fn.new_block("entry"))
    body(b, fn)
    result = run_program(prog, collect_trace=True)
    assert result.return_value == 1
    trace = result.trace
    stores = [e for e in trace if e.inst.op is Opcode.STORE]
    loads = [e for e in trace if e.inst.op is Opcode.LOAD]
    branches = [e for e in trace if e.inst.op is Opcode.BEQ]
    assert stores[0].addr == loads[0].addr >= 64
    assert branches[0].taken


def test_branch_outcome_profile():
    def body(b, fn):
        i = b.mov(Imm(0))
        b.set_block(fn.new_block("loop"))
        ni = b.add(i, Imm(1))
        b.mov_to(i, ni)
        b.blt(i, Imm(5), "loop")
        b.ret(i)

    result = run_program(build(body))
    assert result.return_value == 5
    outcomes = list(result.branch_outcomes.values())
    assert outcomes == [[1, 4]]  # taken 4x, fall through once


def test_step_limit():
    def body(b, fn):
        b.set_block(fn.new_block("spin"))
        b.jump("spin")

    with pytest.raises(StepLimitExceeded):
        run_program(build(body), max_steps=100)


def test_block_counts_collected():
    def body(b, fn):
        i = b.mov(Imm(0))
        b.set_block(fn.new_block("loop"))
        ni = b.add(i, Imm(1))
        b.mov_to(i, ni)
        b.blt(i, Imm(3), "loop")
        b.ret(i)

    result = run_program(build(body))
    assert result.block_counts[("main", "loop")] == 3
    assert result.block_counts[("main", "entry")] == 1


def test_call_and_return_values():
    prog = Program()
    callee = Function("twice")
    arg = callee.new_vreg()
    callee.params.append(arg)
    cb = IRBuilder(callee, callee.new_block("entry"))
    cb.ret(cb.add(arg, arg))
    prog.add_function(callee)

    main = Function("main")
    prog.functions["main"] = main
    mb = IRBuilder(main, main.new_block("entry"))
    result = mb.call("twice", (Imm(21),))
    mb.ret(result)
    assert run_program(prog).return_value == 42
