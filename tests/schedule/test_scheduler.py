"""Dependence DAG and list scheduler tests."""

from repro.analysis.liveness import liveness
from repro.ir import (Function, GlobalAddr, IRBuilder, Imm, Instruction,
                      Opcode, PReg, PredDest, Program, PType, VReg)
from repro.machine.descriptor import MachineDescription
from repro.schedule.dag import build_dag
from repro.schedule.list_scheduler import schedule_block


def _machine(width=4, branches=1):
    return MachineDescription(issue_width=width,
                              branch_issue_limit=branches)


def _fn_with(insts):
    fn = Function("f")
    block = fn.new_block("entry")
    block.instructions = list(insts)
    block.append(Instruction(Opcode.RET))
    return fn, block


def _schedule_is_topological(fn, block, machine):
    live = liveness(fn)
    original = list(block.instructions)
    graph = build_dag(fn, block, live, machine)
    schedule_block(fn, block, machine, live)
    pos = {inst.uid: k for k, inst in enumerate(block.instructions)}
    for i in range(len(original)):
        for j, _lat in graph.succs[i]:
            if pos[original[i].uid] > pos[original[j].uid]:
                return False
    return True


def test_raw_dependences_respected():
    fn, block = _fn_with([
        Instruction(Opcode.ADD, dest=VReg(0), srcs=(Imm(1), Imm(2))),
        Instruction(Opcode.MUL, dest=VReg(1), srcs=(VReg(0), Imm(3))),
        Instruction(Opcode.SUB, dest=VReg(2), srcs=(VReg(1), Imm(4))),
    ])
    assert _schedule_is_topological(fn, block, _machine())


def test_independent_ops_pack_into_one_cycle():
    insts = [Instruction(Opcode.ADD, dest=VReg(k),
                         srcs=(Imm(k), Imm(1))) for k in range(4)]
    fn, block = _fn_with(insts)
    result = schedule_block(fn, block, _machine(width=8))
    cycles = {result.cycles[i.uid] for i in block.instructions[:-1]}
    assert cycles == {0}


def test_issue_width_limits_parallelism():
    insts = [Instruction(Opcode.ADD, dest=VReg(k),
                         srcs=(Imm(k), Imm(1))) for k in range(8)]
    fn, block = _fn_with(insts)
    result = schedule_block(fn, block, _machine(width=2))
    assert result.length >= 4


def test_branch_slot_limit():
    fn = Function("f")
    block = fn.new_block("entry")
    for k in range(3):
        block.append(Instruction(Opcode.BEQ, srcs=(VReg(9), Imm(k)),
                                 target=f"t{k}"))
    block.append(Instruction(Opcode.RET))
    for k in range(3):
        fn.new_block(f"t{k}").append(Instruction(Opcode.RET))
    result = schedule_block(fn, block, _machine(width=8, branches=1))
    branch_cycles = [result.cycles[i.uid] for i in block.instructions
                     if i.op is Opcode.BEQ]
    assert len(set(branch_cycles)) == len(branch_cycles)


def test_or_defines_issue_same_cycle():
    p = PReg(1)
    insts = [
        Instruction(Opcode.PRED_EQ, srcs=(VReg(1), Imm(k)),
                    pdests=(PredDest(p, PType.OR),))
        for k in range(3)
    ]
    fn, block = _fn_with(insts)
    result = schedule_block(fn, block, _machine(width=8))
    cycles = {result.cycles[i.uid] for i in block.instructions[:-1]}
    assert cycles == {0}, "wired-OR defines must be order independent"


def test_u_defines_serialize():
    p = PReg(1)
    insts = [
        Instruction(Opcode.PRED_EQ, srcs=(VReg(1), Imm(k)),
                    pdests=(PredDest(p, PType.U),))
        for k in range(2)
    ]
    fn, block = _fn_with(insts)
    result = schedule_block(fn, block, _machine(width=8))
    cycles = [result.cycles[i.uid] for i in block.instructions
              if i.is_pred_define]
    assert len(cycles) == 2 and cycles[0] != cycles[1]


def test_guarded_use_waits_for_define():
    p = PReg(1)
    insts = [
        Instruction(Opcode.PRED_EQ, srcs=(VReg(1), Imm(0)),
                    pdests=(PredDest(p, PType.U),)),
        Instruction(Opcode.ADD, dest=VReg(2), srcs=(Imm(1), Imm(2)),
                    pred=p),
    ]
    fn, block = _fn_with(insts)
    result = schedule_block(fn, block, _machine(width=8))
    define = next(i for i in block.instructions if i.is_pred_define)
    use = next(i for i in block.instructions if i.op is Opcode.ADD)
    # The guard must be available a full cycle before the guarded use
    # (suppression at decode/issue, paper Section 2.1).
    assert result.cycles[use.uid] >= result.cycles[define.uid] + 1


def test_complementary_cmovs_may_share_cycle():
    cond = VReg(9)
    insts = [
        Instruction(Opcode.CMOV, dest=VReg(0), srcs=(VReg(1), cond)),
        Instruction(Opcode.CMOV_COM, dest=VReg(0), srcs=(VReg(2), cond)),
    ]
    fn, block = _fn_with(insts)
    result = schedule_block(fn, block, _machine(width=8))
    cycles = [result.cycles[i.uid] for i in block.instructions[:-1]]
    assert cycles[0] == cycles[1]


def test_memory_disambiguation_distinct_globals():
    insts = [
        Instruction(Opcode.STORE, srcs=(GlobalAddr("a"), Imm(0),
                                        VReg(1))),
        Instruction(Opcode.LOAD, dest=VReg(2),
                    srcs=(GlobalAddr("b"), Imm(0))),
    ]
    fn, block = _fn_with(insts)
    live = liveness(fn)
    graph = build_dag(fn, block, live, _machine())
    assert not any(j == 1 for j, _ in graph.succs[0]), \
        "distinct globals must not serialize"


def test_memory_same_global_serializes():
    insts = [
        Instruction(Opcode.STORE, srcs=(GlobalAddr("a"), Imm(0),
                                        VReg(1))),
        Instruction(Opcode.LOAD, dest=VReg(2),
                    srcs=(GlobalAddr("a"), Imm(4))),
    ]
    fn, block = _fn_with(insts)
    live = liveness(fn)
    graph = build_dag(fn, block, live, _machine())
    assert (1, 1) in graph.succs[0]


def test_register_address_is_opaque():
    insts = [
        Instruction(Opcode.STORE, srcs=(VReg(5), Imm(0), VReg(1))),
        Instruction(Opcode.LOAD, dest=VReg(2),
                    srcs=(GlobalAddr("a"), Imm(0))),
    ]
    fn, block = _fn_with(insts)
    graph = build_dag(fn, block, liveness(fn), _machine())
    assert any(j == 1 for j, _ in graph.succs[0])


def test_mem_hint_restores_disambiguation():
    store = Instruction(Opcode.STORE, srcs=(VReg(5), Imm(0), VReg(1)))
    store.mem_hint = "a"
    insts = [
        store,
        Instruction(Opcode.LOAD, dest=VReg(2),
                    srcs=(GlobalAddr("b"), Imm(0))),
    ]
    fn, block = _fn_with(insts)
    graph = build_dag(fn, block, liveness(fn), _machine())
    assert not any(j == 1 for j, _ in graph.succs[0])


def test_speculative_load_crossing_branch_marked_silent():
    fn = Function("f")
    cold = fn.new_block("cold")
    cold.append(Instruction(Opcode.RET))
    block = BasicBlockHelper = fn.new_block("entry")
    block.append(Instruction(Opcode.BEQ, srcs=(VReg(9), Imm(0)),
                             target="cold"))
    block.append(Instruction(Opcode.LOAD, dest=VReg(0),
                             srcs=(GlobalAddr("a"), Imm(0))))
    block.append(Instruction(Opcode.RET, srcs=(VReg(0),)))
    fn.blocks.reverse()  # entry must be first
    fn.blocks.sort(key=lambda b: 0 if b.name == "entry" else 1)
    result = schedule_block(fn, fn.block("entry"), _machine(width=8))
    insts = fn.block("entry").instructions
    load = next(i for i in insts if i.op is Opcode.LOAD)
    branch = next(i for i in insts if i.op is Opcode.BEQ)
    if insts.index(load) < insts.index(branch):
        assert load.speculative
        assert result.speculated == 1
    del BasicBlockHelper


def test_scheduler_never_drops_instructions():
    insts = [Instruction(Opcode.ADD, dest=VReg(k), srcs=(Imm(k), Imm(1)))
             for k in range(20)]
    fn, block = _fn_with(insts)
    schedule_block(fn, block, _machine(width=3))
    assert len(block.instructions) == 21


def test_store_stream_keeps_program_order():
    # Regression found by the differential fuzzer (case-feed-00204):
    # two stores to distinct globals carry no alias edge, so the
    # scheduler was free to emit the cheap-operand store first.  The
    # emulator executes emission order and the differential oracle
    # treats the dynamic store stream as observable, so superblock code
    # diverged from the predicated models.  Writes must keep program
    # order even when provably independent.
    insts = [
        Instruction(Opcode.MUL, dest=VReg(0), srcs=(VReg(8), VReg(9))),
        Instruction(Opcode.MUL, dest=VReg(1), srcs=(VReg(0), VReg(9))),
        Instruction(Opcode.MUL, dest=VReg(2), srcs=(VReg(1), VReg(9))),
        Instruction(Opcode.STORE, srcs=(GlobalAddr("g2"), Imm(0),
                                        VReg(2))),
        Instruction(Opcode.STORE, srcs=(GlobalAddr("g1"), Imm(0),
                                        VReg(7))),
    ]
    fn, block = _fn_with(insts)
    schedule_block(fn, block, _machine(width=8))
    stores = [i.srcs[0].name for i in block.instructions
              if i.op is Opcode.STORE]
    assert stores == ["g2", "g1"]


def test_store_order_edge_still_allows_same_cycle_issue():
    # The ordering edge is latency 0: two ready stores to distinct
    # globals still dual-issue.
    insts = [
        Instruction(Opcode.STORE, srcs=(GlobalAddr("a"), Imm(0),
                                        VReg(1))),
        Instruction(Opcode.STORE, srcs=(GlobalAddr("b"), Imm(0),
                                        VReg(2))),
    ]
    fn, block = _fn_with(insts)
    result = schedule_block(fn, block, _machine(width=8))
    cycles = [result.cycles[i.uid] for i in block.instructions
              if i.op is Opcode.STORE]
    assert cycles[0] == cycles[1] == 0
