"""Shared fixtures: small programs, machines, and compilation helpers."""

from __future__ import annotations

import pytest

from repro.analysis.profile import Profile
from repro.machine.descriptor import MachineDescription
from repro.toolchain import frontend

WC_SOURCE = """
char buf[256];
int n;
int nl;
int nw;
int nc;

int main() {
  int i;
  int inword;
  int c;
  inword = 0;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    nc = nc + 1;
    if (c == '\\n') nl = nl + 1;
    if (c == ' ' || c == '\\n' || c == '\\t') inword = 0;
    else if (!inword) { inword = 1; nw = nw + 1; }
  }
  return nl * 10000 + nw * 100 + nc;
}
"""

WC_TEXT = b"the quick brown\nfox jumps over\nthe lazy dog\n"


def wc_inputs() -> dict:
    return {"buf": list(WC_TEXT), "n": [len(WC_TEXT)]}


def wc_expected() -> int:
    lines = WC_TEXT.count(b"\n")
    words = len(WC_TEXT.split())
    return lines * 10000 + words * 100 + len(WC_TEXT)


@pytest.fixture
def wc_program():
    return frontend(WC_SOURCE)


@pytest.fixture
def wc_profile(wc_program):
    return Profile.collect(wc_program, inputs=wc_inputs())


@pytest.fixture
def machine8() -> MachineDescription:
    return MachineDescription(issue_width=8, branch_issue_limit=1)


@pytest.fixture
def machine1() -> MachineDescription:
    return MachineDescription(issue_width=1, branch_issue_limit=1)
