"""Operand identity, hashing and display."""

from repro.ir.operands import (GlobalAddr, Imm, PReg, RegClass, VReg,
                               is_register)


def test_vreg_repr_and_class():
    assert repr(VReg(3)) == "r3"
    assert repr(VReg(7, RegClass.FLOAT)) == "f7"
    assert VReg(7, RegClass.FLOAT).is_float
    assert not VReg(7).is_float


def test_vreg_equality_is_structural():
    assert VReg(1) == VReg(1)
    assert VReg(1) != VReg(1, RegClass.FLOAT)
    assert VReg(1) != VReg(2)


def test_operands_are_hashable():
    regs = {VReg(0), VReg(0), VReg(1), PReg(1), Imm(5),
            GlobalAddr("x"), GlobalAddr("x", 4)}
    assert len(regs) == 6


def test_preg_repr():
    assert repr(PReg(4)) == "p4"
    assert PReg(4).is_pred


def test_imm_repr():
    assert repr(Imm(42)) == "#42"
    assert repr(Imm(1.5)) == "#1.5"


def test_global_addr_offset():
    assert repr(GlobalAddr("tab")) == "@tab"
    assert repr(GlobalAddr("tab", 8)) == "@tab+8"
    assert GlobalAddr("tab", 8) != GlobalAddr("tab")


def test_is_register():
    assert is_register(VReg(0))
    assert is_register(PReg(0))
    assert not is_register(Imm(1))
    assert not is_register(GlobalAddr("g"))
