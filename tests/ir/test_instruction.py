"""Instruction structure: defs/uses, guards, copies, display."""

from repro.ir.instruction import Instruction, PredDest, PType
from repro.ir.opcodes import OpCategory, Opcode
from repro.ir.operands import Imm, PReg, VReg


def _add(dest=0, a=1, b=2, pred=None):
    return Instruction(Opcode.ADD, dest=VReg(dest),
                       srcs=(VReg(a), VReg(b)),
                       pred=PReg(pred) if pred is not None else None)


def test_defined_and_used_regs():
    inst = _add()
    assert inst.defined_regs() == (VReg(0),)
    assert set(inst.used_regs()) == {VReg(1), VReg(2)}


def test_guard_is_a_use():
    inst = _add(pred=3)
    assert PReg(3) in inst.used_regs()
    assert inst.is_conditional_write


def test_pred_define_defs_and_rmw_uses():
    inst = Instruction(Opcode.PRED_EQ, srcs=(VReg(1), Imm(0)),
                       pdests=(PredDest(PReg(1), PType.OR),
                               PredDest(PReg(2), PType.U_BAR)))
    assert set(inst.defined_regs()) == {PReg(1), PReg(2)}
    # OR-type destinations read-modify-write; U-types do not.
    assert PReg(1) in inst.used_regs()
    assert PReg(2) not in inst.used_regs()


def test_cmov_implicitly_reads_dest():
    inst = Instruction(Opcode.CMOV, dest=VReg(0),
                       srcs=(VReg(1), VReg(2)))
    assert VReg(0) in inst.used_regs()
    assert inst.is_conditional_write


def test_select_always_writes():
    inst = Instruction(Opcode.SELECT, dest=VReg(0),
                       srcs=(VReg(1), VReg(2), VReg(3)))
    assert VReg(0) not in inst.used_regs()
    assert not inst.is_conditional_write


def test_copy_keeps_uid_fresh_copy_does_not():
    inst = _add()
    same = inst.copy(dest=VReg(9))
    assert same.uid == inst.uid
    assert same.dest == VReg(9)
    fresh = inst.fresh_copy()
    assert fresh.uid != inst.uid


def test_copy_overrides_pred():
    inst = _add()
    guarded = inst.copy(pred=PReg(5))
    assert guarded.pred == PReg(5)
    assert inst.pred is None


def test_terminator_classification():
    assert Instruction(Opcode.JUMP, target="L").is_terminator
    assert Instruction(Opcode.RET).is_terminator
    assert not Instruction(Opcode.JUMP, target="L",
                           pred=PReg(1)).is_terminator
    assert not Instruction(Opcode.BEQ, srcs=(VReg(0), Imm(0)),
                           target="L").is_terminator


def test_branch_condition_names():
    br = Instruction(Opcode.BLT, srcs=(VReg(0), VReg(1)), target="L")
    assert br.condition == "lt"
    assert br.is_branch
    assert br.cat is OpCategory.BRANCH


def test_purity():
    assert _add().is_pure
    assert not Instruction(Opcode.STORE,
                           srcs=(VReg(0), Imm(0), VReg(1))).is_pure
    assert not Instruction(Opcode.JUMP, target="L").is_pure
    assert not Instruction(Opcode.PRED_CLEAR).is_pure


def test_repr_includes_guard_and_spec():
    inst = _add(pred=2)
    assert "(p2)" in repr(inst)
    spec = Instruction(Opcode.LOAD, dest=VReg(0),
                       srcs=(VReg(1), Imm(0)), speculative=True)
    assert "load.s" in repr(spec)


def test_replace_srcs():
    inst = _add()
    inst.replace_srcs({VReg(1): VReg(7)})
    assert inst.srcs == (VReg(7), VReg(2))
