"""Opcode metadata: categories, inverses, side effects."""

import pytest

from repro.ir.opcodes import (COMMUTATIVE, CONDITION, MAY_EXCEPT,
                              OpCategory, Opcode, category,
                              has_side_effects, inverse, is_control,
                              opcode_for_condition, swapped, writes_float)


def test_every_opcode_has_a_category():
    for op in Opcode:
        assert isinstance(category(op), OpCategory)


def test_condition_families_are_complete():
    for cat in (OpCategory.CMP, OpCategory.FCMP, OpCategory.BRANCH,
                OpCategory.PREDDEF):
        for cond in ("eq", "ne", "lt", "le", "gt", "ge"):
            op = opcode_for_condition(cat, cond)
            assert category(op) is cat
            assert CONDITION[op] == cond


@pytest.mark.parametrize("op,expected", [
    (Opcode.CMP_EQ, Opcode.CMP_NE),
    (Opcode.CMP_LT, Opcode.CMP_GE),
    (Opcode.CMP_GT, Opcode.CMP_LE),
    (Opcode.BEQ, Opcode.BNE),
    (Opcode.BLT, Opcode.BGE),
    (Opcode.FCMP_LE, Opcode.FCMP_GT),
])
def test_inverse(op, expected):
    assert inverse(op) is expected
    assert inverse(expected) is op


def test_inverse_is_involution():
    for op in CONDITION:
        assert inverse(inverse(op)) is op


def test_swapped():
    assert swapped(Opcode.CMP_LT) is Opcode.CMP_GT
    assert swapped(Opcode.CMP_EQ) is Opcode.CMP_EQ
    for op in CONDITION:
        assert swapped(swapped(op)) is op


def test_commutative_subset():
    assert Opcode.ADD in COMMUTATIVE
    assert Opcode.SUB not in COMMUTATIVE
    assert Opcode.SHL not in COMMUTATIVE
    assert Opcode.CMP_LT not in COMMUTATIVE


def test_may_except_covers_memory_and_divide():
    assert Opcode.LOAD in MAY_EXCEPT
    assert Opcode.DIV in MAY_EXCEPT
    assert Opcode.FDIV in MAY_EXCEPT
    assert Opcode.ADD not in MAY_EXCEPT
    assert Opcode.STORE not in MAY_EXCEPT  # guarded via $safe_addr


def test_side_effects():
    assert has_side_effects(Opcode.STORE)
    assert has_side_effects(Opcode.JSR)
    assert has_side_effects(Opcode.PRED_CLEAR)
    assert not has_side_effects(Opcode.ADD)
    assert not has_side_effects(Opcode.PRED_EQ)


def test_is_control():
    for op in (Opcode.BEQ, Opcode.JUMP, Opcode.JSR, Opcode.RET):
        assert is_control(op)
    for op in (Opcode.ADD, Opcode.CMOV, Opcode.PRED_EQ):
        assert not is_control(op)


def test_writes_float():
    assert writes_float(Opcode.FADD)
    assert writes_float(Opcode.CVT_IF)
    assert not writes_float(Opcode.CVT_FI)
    assert not writes_float(Opcode.FCMP_LT)  # comparison result is int
