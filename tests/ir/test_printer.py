"""Textual IR rendering tests."""

from repro.ir import (Function, GlobalVar, IRBuilder, Imm, Instruction,
                      Opcode, PReg, PredDest, Program, PType, VReg,
                      format_block, format_function, format_program)


def _sample_function() -> Function:
    fn = Function("sample")
    b = IRBuilder(fn, fn.new_block("entry"))
    t = b.add(VReg(10), Imm(1))
    b.emit(Instruction(Opcode.MOV, dest=VReg(0), srcs=(t,),
                       pred=PReg(2)))
    b.ret(VReg(0))
    return fn


def test_format_block_lists_instructions():
    fn = _sample_function()
    text = format_block(fn.entry)
    assert text.startswith("entry:")
    assert "add" in text and "(p2)" in text


def test_format_block_with_cycle_annotations():
    fn = _sample_function()
    cycles = {inst.uid: k for k, inst in
              enumerate(fn.entry.instructions)}
    text = format_block(fn.entry, cycles=cycles)
    assert "; cycle 0" in text and "; cycle 2" in text


def test_format_function_includes_params():
    fn = Function("f", params=[VReg(0), VReg(1)])
    b = IRBuilder(fn, fn.new_block("entry"))
    b.ret(VReg(0))
    text = format_function(fn)
    assert "function f(r0, r1):" in text


def test_format_program_includes_globals():
    prog = Program()
    prog.add_global(GlobalVar("tab", 4, 8))
    prog.add_global(GlobalVar("w", 8, 2, is_float=True))
    fn = Function("main")
    prog.add_function(fn)
    b = IRBuilder(fn, fn.new_block("entry"))
    b.ret(Imm(0))
    text = format_program(prog)
    assert "global tab: i32[8]" in text
    assert "global w: float[2]" in text
    assert "function main" in text


def test_pred_define_rendering():
    inst = Instruction(Opcode.PRED_EQ, srcs=(VReg(1), Imm(0)),
                       pdests=(PredDest(PReg(1), PType.OR),
                               PredDest(PReg(2), PType.U_BAR)),
                       pred=PReg(3))
    text = repr(inst)
    assert "p1<OR>" in text and "p2<U~>" in text and "(p3)" in text
