"""Function/CFG structure and the ISA-level verifier."""

import pytest

from repro.ir import (BasicBlock, Function, GlobalVar, IRBuilder, IRError,
                      ISALevel, Imm, Instruction, Opcode, PReg, Program,
                      RegClass, VReg, VerificationError, verify_program)
from repro.ir.instruction import PredDest, PType


def _simple_program() -> Program:
    prog = Program()
    fn = Function("main")
    prog.add_function(fn)
    b = IRBuilder(fn, fn.new_block("entry"))
    t = b.add(Imm(1), Imm(2))
    b.ret(t)
    return prog


def test_builder_creates_fresh_registers():
    fn = Function("f")
    assert fn.new_vreg() == VReg(0)
    assert fn.new_vreg(RegClass.FLOAT) == VReg(1, RegClass.FLOAT)
    assert fn.new_preg() == PReg(1)
    assert fn.new_preg() == PReg(2)


def test_duplicate_block_name_rejected():
    fn = Function("f")
    fn.new_block("entry")
    with pytest.raises(IRError):
        fn.new_block("entry")


def test_successor_labels_fallthrough():
    fn = Function("f")
    a = fn.new_block("a")
    fn.new_block("b")
    builder = IRBuilder(fn, a)
    builder.beq(VReg(0), Imm(0), "b")
    assert a.successor_labels("b") == ["b"]
    builder.jump("a")
    assert a.successor_labels("b") == ["b", "a"]


def test_successors_through_predicated_jump():
    fn = Function("f")
    a = fn.new_block("a")
    fn.new_block("b")
    fn.new_block("c")
    a.append(Instruction(Opcode.JUMP, target="c", pred=PReg(1)))
    # predicated jump falls through when suppressed
    assert a.successor_labels("b") == ["c", "b"]


def test_predecessors_map():
    prog = _simple_program()
    fn = prog.main
    preds = fn.predecessors_map()
    assert preds == {"entry": []}


def test_verify_accepts_simple_program():
    verify_program(_simple_program(), ISALevel.BASELINE)


def test_verify_rejects_unknown_branch_target():
    prog = _simple_program()
    entry = prog.main.entry
    entry.instructions.insert(
        0, Instruction(Opcode.BEQ, srcs=(Imm(0), Imm(0)), target="nope"))
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.BASELINE)


def test_verify_rejects_fallthrough_off_end():
    prog = Program()
    fn = Function("main")
    prog.add_function(fn)
    block = fn.new_block("entry")
    block.append(Instruction(Opcode.ADD, dest=VReg(0),
                             srcs=(Imm(1), Imm(2))))
    with pytest.raises(VerificationError):
        verify_program(prog)


def test_verify_rejects_predication_at_baseline():
    prog = _simple_program()
    entry = prog.main.entry
    entry.instructions.insert(
        0, Instruction(Opcode.ADD, dest=VReg(5), srcs=(Imm(1), Imm(1)),
                       pred=PReg(1)))
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.BASELINE)
    # Full predication accepts it.
    verify_program(prog, ISALevel.FULL)


def test_verify_rejects_cmov_at_baseline_but_not_partial():
    prog = _simple_program()
    entry = prog.main.entry
    entry.instructions.insert(
        0, Instruction(Opcode.CMOV, dest=VReg(5),
                       srcs=(Imm(1), VReg(0))))
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.BASELINE)
    verify_program(prog, ISALevel.PARTIAL)


def test_verify_rejects_pred_define_at_partial():
    prog = _simple_program()
    entry = prog.main.entry
    entry.instructions.insert(
        0, Instruction(Opcode.PRED_EQ, srcs=(Imm(0), Imm(0)),
                       pdests=(PredDest(PReg(1), PType.U),)))
    with pytest.raises(VerificationError):
        verify_program(prog, ISALevel.PARTIAL)
    verify_program(prog, ISALevel.FULL)


def test_verify_rejects_wrong_arity():
    prog = _simple_program()
    prog.main.entry.instructions.insert(
        0, Instruction(Opcode.ADD, dest=VReg(5),
                       srcs=(Imm(1), Imm(2), Imm(3))))
    with pytest.raises(VerificationError):
        verify_program(prog)


def test_verify_call_arity():
    prog = _simple_program()
    callee = Function("callee", params=[VReg(0), VReg(1)])
    prog.add_function(callee)
    b = IRBuilder(callee, callee.new_block("entry"))
    b.ret(Imm(0))
    prog.main.entry.instructions.insert(
        0, Instruction(Opcode.JSR, dest=VReg(9), srcs=(Imm(1),),
                       target="callee"))
    with pytest.raises(VerificationError):
        verify_program(prog)


def test_verify_rejects_missing_entry():
    prog = Program()
    fn = Function("helper")
    prog.add_function(fn)
    b = IRBuilder(fn, fn.new_block("entry"))
    b.ret(Imm(0))
    with pytest.raises(VerificationError):
        verify_program(prog)


def test_program_static_size():
    prog = _simple_program()
    assert prog.static_size() == 2


def test_global_var_sizes():
    g = GlobalVar("tab", 4, 10)
    assert g.byte_size == 40
    assert GlobalVar("f", 8, 3, is_float=True).byte_size == 24
