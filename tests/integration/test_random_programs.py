"""Property-based differential testing with randomly generated MiniC.

Hypothesis builds small structured MiniC programs (bounded loops,
nested conditionals, short-circuit conditions, array traffic), and every
program must produce identical results under the interpreter before and
after each compilation pipeline — across all three processor models.
This is the widest net for miscompilation bugs in the repository.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.profile import Profile
from repro.emu import run_program
from repro.ir import verify_program
from repro.machine.descriptor import fig8_machine
from repro.toolchain import Model, compile_for_model, frontend

_VARS = ["v0", "v1", "v2", "v3"]
_ARR = "arr"


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return draw(st.sampled_from(
            _VARS + [str(draw(st.integers(0, 9)))]))
    choice = draw(st.integers(0, 5))
    if choice <= 1:
        return draw(st.sampled_from(
            _VARS + [str(draw(st.integers(0, 9)))]))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({left} {op} {right})"
    if choice == 3:
        op = draw(st.sampled_from(["<", "<=", "==", "!=", ">", ">="]))
        return f"({left} {op} {right})"
    if choice == 4:
        idx = draw(expressions(depth=0))
        # MiniC `%` truncates like C, so a bare `idx % 16` can go
        # negative; the double-mod keeps the index in bounds.
        return f"{_ARR}[(({idx}) % 16 + 16) % 16]"
    return f"(({left}) % 7 + 7) % 7"


@st.composite
def conditions(draw):
    kind = draw(st.integers(0, 2))
    a = draw(expressions(depth=1))
    b = draw(expressions(depth=1))
    op = draw(st.sampled_from(["<", "==", "!=", ">="]))
    if kind == 0:
        return f"{a} {op} {b}"
    c = draw(expressions(depth=1))
    joiner = draw(st.sampled_from(["&&", "||"]))
    return f"({a} {op} {b}) {joiner} ({c} != 0)"


@st.composite
def statements(draw, depth=2):
    kind = draw(st.integers(0, 4 if depth > 0 else 1))
    if kind == 0:
        var = draw(st.sampled_from(_VARS))
        expr = draw(expressions(depth=2))
        return f"{var} = {expr};"
    if kind == 1:
        idx = draw(expressions(depth=0))
        expr = draw(expressions(depth=1))
        return f"{_ARR}[(({idx}) % 16 + 16) % 16] = {expr};"
    if kind == 2:
        cond = draw(conditions())
        then = draw(statements(depth=depth - 1))
        if draw(st.booleans()):
            other = draw(statements(depth=depth - 1))
            return f"if ({cond}) {{ {then} }} else {{ {other} }}"
        return f"if ({cond}) {{ {then} }}"
    if kind == 3:
        body = draw(statements(depth=depth - 1))
        var = draw(st.sampled_from(_VARS))
        return (f"for (it = 0; it < 6; it = it + 1) "
                f"{{ {body} {var} = {var} + 1; }}")
    first = draw(statements(depth=depth - 1))
    second = draw(statements(depth=depth - 1))
    return f"{first} {second}"


@st.composite
def programs(draw):
    body = " ".join(draw(st.lists(statements(), min_size=2, max_size=5)))
    decls = " ".join(f"int {v};" for v in _VARS) + " int it;"
    inits = " ".join(f"{v} = {draw(st.integers(0, 9))};" for v in _VARS)
    checks = " + ".join(f"{v} * {k + 2}" for k, v in enumerate(_VARS))
    array_sum = ("for (it = 0; it < 16; it = it + 1) "
                 "v0 = (v0 + arr[it]) % 100003;")
    return (f"int arr[16];\n"
            f"int main() {{ {decls} {inits} {body} {array_sum} "
            f"return ({checks}) % 1000003; }}")


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(source=programs(),
       seeds=st.lists(st.integers(0, 99), min_size=16, max_size=16))
def test_all_models_compute_identical_results(source, seeds):
    inputs = {"arr": seeds}
    base = frontend(source)
    golden = run_program(base, inputs=inputs,
                         max_steps=300_000).return_value
    profile = Profile.collect(base, inputs=inputs, max_steps=300_000)
    machine = fig8_machine()
    for model in Model:
        compiled = compile_for_model(base, model, profile, machine)
        verify_program(compiled.program, model.isa_level)
        got = run_program(compiled.program, inputs=inputs,
                          max_steps=600_000).return_value
        assert got == golden, (model, source)
