"""Cross-model differential testing: the strongest end-to-end check.

Every workload, compiled under all three processor models, must compute
the same program result — the three compilation pipelines are free to
transform arbitrarily but never to change semantics.
"""

import pytest

from repro.experiments.runner import ExperimentSuite
from repro.machine.descriptor import fig8_machine, fig10_machine
from repro.toolchain import Model
from repro.workloads import all_workloads, get_workload

_SCALE = 0.25


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(scale=_SCALE)


@pytest.mark.parametrize("name",
                         [w.name for w in all_workloads()])
def test_models_agree_8issue(suite, name):
    suite.check_model_agreement(name, fig8_machine())


@pytest.mark.parametrize("name", ["wc", "grep", "qsort", "cccp"])
def test_models_agree_4issue(suite, name):
    suite.check_model_agreement(name, fig10_machine())


@pytest.mark.parametrize("name",
                         [w.name for w in all_workloads()])
def test_every_model_verifies_at_its_isa_level(suite, name):
    from repro.ir import verify_program
    for model in Model:
        compiled = suite._compile(name, model, fig8_machine())
        verify_program(compiled.program, model.isa_level)


def test_predicated_models_reduce_branches_overall(suite):
    total = {model: 0 for model in Model}
    for w in suite.workloads:
        for model in Model:
            run = suite.run(w.name, model, fig8_machine())
            total[model] += run.stats.branches
    assert total[Model.FULLPRED] < total[Model.SUPERBLOCK]


def test_workload_inputs_are_deterministic():
    w = get_workload("wc")
    assert w.inputs(0.5) == w.inputs(0.5)
    assert w.inputs(0.5) != w.inputs(1.0)
