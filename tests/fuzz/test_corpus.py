"""Corpus: on-disk round trips and deterministic listing."""

from __future__ import annotations

import json

import pytest

from repro.fuzz.corpus import CorpusEntry, list_entries, load_entry, save_entry


def _entry(entry_id="finding-abc123", **kw) -> CorpusEntry:
    defaults = dict(source="int main() { return 1; }\n",
                    inputs={"n": [4]}, expect="finding",
                    provenance="fuzz:case-feed-00007",
                    signature={"kind": "divergence", "error_type": "E",
                               "detail": [], "key": "abc123def456"},
                    notes="one witness")
    defaults.update(kw)
    return CorpusEntry(entry_id=entry_id, **defaults)


def test_save_load_roundtrip(tmp_path):
    saved_dir = save_entry(_entry(), tmp_path)
    assert (saved_dir / "case.c").is_file()
    loaded = load_entry("finding-abc123", tmp_path)
    original = _entry()
    assert loaded == original


def test_load_by_directory_path(tmp_path):
    saved_dir = save_entry(_entry(), tmp_path)
    assert load_entry(saved_dir).entry_id == "finding-abc123"


def test_load_missing_entry_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_entry("nope", tmp_path)


def test_list_entries_sorted_and_skips_strays(tmp_path):
    save_entry(_entry("zz-last"), tmp_path)
    save_entry(_entry("aa-first"), tmp_path)
    (tmp_path / "stray-dir").mkdir()          # no meta.json: ignored
    (tmp_path / "stray-file").write_text("")  # not a dir: ignored
    ids = [e.entry_id for e in list_entries(tmp_path)]
    assert ids == ["aa-first", "zz-last"]


def test_list_entries_missing_root_is_empty(tmp_path):
    assert list_entries(tmp_path / "absent") == []


def test_meta_is_plain_json(tmp_path):
    saved_dir = save_entry(_entry(), tmp_path)
    meta = json.loads((saved_dir / "meta.json").read_text())
    assert meta["expect"] == "finding"
    assert meta["signature"]["kind"] == "divergence"
    assert meta["inputs"] == {"n": [4]}
