"""Campaign runner: determinism, triage integration, corpus output."""

from __future__ import annotations

import pytest

import repro.fuzz.executor as executor_mod
from repro.engine.metrics import PipelineMetrics
from repro.fuzz.runner import FuzzChunkSpec, fuzz_chunk, run_campaign

from tests.fuzz.conftest import sabotaged_compile


def test_chunk_worker_is_self_contained(fast_config):
    spec = FuzzChunkSpec(master_seed=0xfeed, start_index=0, count=2,
                         config=fast_config)
    reports = fuzz_chunk(spec)
    assert [r["case_id"] for r in reports] == \
        ["case-feed-00000", "case-feed-00001"]
    assert all(r["verdict"] == "ok" for r in reports)


def test_campaign_is_deterministic(fast_config, tmp_path):
    kwargs = dict(config=fast_config, corpus_dir=tmp_path,
                  save_findings=False, reduce_findings=False)
    a = run_campaign(0xfeed, 3, **kwargs)
    b = run_campaign(0xfeed, 3, **kwargs)
    assert [r.to_dict() for r in a.reports] != []
    strip = lambda rs: [{k: v for k, v in r.to_dict().items()
                         if k != "wall_seconds"} for r in rs]
    assert strip(a.reports) == strip(b.reports)


def test_campaign_records_metrics(fast_config, tmp_path):
    metrics = PipelineMetrics()
    result = run_campaign(0xfeed, 2, config=fast_config,
                          corpus_dir=tmp_path, save_findings=False,
                          metrics=metrics)
    assert metrics.fuzz_cases == 2
    assert metrics.fuzz_findings == result.finding_count == 0
    assert metrics.fuzz_seconds > 0
    assert metrics.fuzz_cases_per_second > 0
    data = metrics.to_dict()
    assert data["fuzz_cases"] == 2
    assert data["fuzz_dedupe_ratio"] == 1.0
    merged = PipelineMetrics()
    merged.merge_dict(data)
    assert merged.fuzz_cases == 2


def test_injected_findings_are_deduped_reduced_and_saved(
        fast_config, tmp_path, monkeypatch):
    # Serial campaign (jobs=1) runs chunks in-process, so the
    # monkeypatched compiler sabotage applies to every case.
    monkeypatch.setattr(executor_mod, "compile_for_model",
                        sabotaged_compile)
    result = run_campaign(0xbadc0de, 4, jobs=1, config=fast_config,
                          corpus_dir=tmp_path)
    assert result.finding_count >= 2
    assert result.unique_findings <= result.finding_count
    assert len(result.saved_entries) == result.unique_findings
    for key, bucket in result.buckets.items():
        entry_dir = tmp_path / f"finding-{key}"
        assert (entry_dir / "case.c").is_file()
        assert (entry_dir / "meta.json").is_file()
        reduced_source, stats = result.reductions[key]
        assert stats.reduced_lines <= stats.original_lines
        assert bucket.signature.kind == "divergence"


def test_progress_callback_sees_every_case(fast_config, tmp_path):
    seen = []
    run_campaign(0xfeed, 3, config=fast_config, corpus_dir=tmp_path,
                 save_findings=False, progress=seen.append)
    assert sum(seen) == 3
