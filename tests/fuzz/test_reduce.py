"""Reducer: region detection, ddmin, and the injected-miscompile gate.

The last test is the PR's acceptance criterion: a synthetic miscompile
injected into the CMOV pipeline must shrink by at least 80% of its
lines, to a reproducer of at most 20 lines, while preserving the
original crash signature at every step.
"""

from __future__ import annotations

import pytest

from repro.analysis.profile import Profile
from repro.emu.interpreter import run_program
from repro.fuzz.generator import generate_case
from repro.fuzz.reduce import _brace_regions, reduce_source
from repro.fuzz.triage import signature_of
from repro.machine.descriptor import MachineDescription
from repro.robustness.differential import assert_equivalent
from repro.toolchain import Model, compile_for_model, frontend

from tests.fuzz.conftest import sabotaged_compile


def test_brace_regions_span_if_else_chains():
    source = "\n".join([
        "int main() {",          # 0
        "  if (1) {",            # 1
        "    x = 1;",            # 2
        "  } else {",            # 3
        "    x = 2;",            # 4
        "  }",                   # 5
        "  while (0) {",         # 6
        "    y = 3;",            # 7
        "  }",                   # 8
        "}",                     # 9
    ])
    regions = _brace_regions(source.splitlines())
    assert (0, 9) in regions       # whole function
    assert (1, 5) in regions       # if/else as ONE region
    assert (6, 8) in regions       # the loop
    assert regions[0] == (0, 9)    # largest first


def test_reduce_plain_text_predicate():
    # No compiler involved: keep shrinking while both markers survive.
    lines = [f"filler_{i};" for i in range(40)]
    lines[7] = "KEEP_A;"
    lines[23] = "KEEP_B;"
    source = "\n".join(lines) + "\n"

    def interesting(candidate: str) -> bool:
        return "KEEP_A;" in candidate and "KEEP_B;" in candidate

    reduced, stats = reduce_source(source, interesting)
    assert "KEEP_A;" in reduced and "KEEP_B;" in reduced
    assert stats.reduced_lines == 2
    assert stats.shrink_ratio >= 0.9


def test_reduce_refuses_flaky_witness():
    with pytest.raises(ValueError):
        reduce_source("a;\nb;\n", lambda _s: False)


def _divergence_signature(source: str, inputs: dict, max_steps: int):
    """Signature of the sabotage-injected CMOV divergence, or None.

    A trimmed-down differential check (legacy engine only, two models)
    so reduction probes stay fast; the full nine-run executor is
    exercised by the campaign tests.
    """
    machine = MachineDescription(issue_width=8, branch_issue_limit=1,
                                 name="8-issue,1-branch")
    try:
        base = frontend(source)
        profile = Profile.collect(base, inputs=inputs,
                                  max_steps=max_steps)
        reference = run_program(
            compile_for_model(base, Model.SUPERBLOCK, profile,
                              machine).program,
            inputs=inputs, max_steps=max_steps)
        candidate = run_program(
            sabotaged_compile(base, Model.CMOV, profile,
                              machine).program,
            inputs=inputs, max_steps=max_steps)
        assert_equivalent(candidate, reference, workload="inject",
                          model=Model.CMOV.value)
    except Exception as exc:  # noqa: BLE001 - folded into a signature
        return signature_of(exc)
    return None


def test_injected_miscompile_reduces_to_minimal_repro():
    case = generate_case(0xbadc0de, 1)  # deep-nest: a big witness
    max_steps = 300_000
    original = _divergence_signature(case.source, case.inputs, max_steps)
    assert original is not None, "sabotage produced no divergence"
    assert original.kind == "divergence"

    probes = {"n": 0}

    def interesting(candidate: str) -> bool:
        probes["n"] += 1
        sig = _divergence_signature(candidate, case.inputs, max_steps)
        return sig is not None and sig.key == original.key

    reduced, stats = reduce_source(case.source, interesting)
    assert stats.shrink_ratio >= 0.8, \
        f"only {stats.shrink_ratio:.0%} shrink over {probes['n']} probes"
    assert stats.reduced_lines <= 20
    # The reduced witness still reproduces the same signature.
    final = _divergence_signature(reduced, case.inputs, max_steps)
    assert final is not None and final.key == original.key
