"""CLI fuzz verbs: exit codes, logs, corpus management."""

from __future__ import annotations

import json

import pytest

import repro.fuzz.executor as executor_mod
from repro.cli import main
from repro.robustness.errors import FuzzFindingsError, ReproError

from tests.fuzz.conftest import sabotaged_compile

_FAST = ["--max-steps", "300000", "--time-budget", "20"]


def test_fuzz_findings_error_is_exit_18():
    assert FuzzFindingsError.exit_code == 18
    assert issubclass(FuzzFindingsError, ReproError)


def test_clean_run_exits_zero(tmp_path, capsys):
    code = main(["fuzz", "run", "--budget", "2", "--seed", "0xfeed",
                 "--corpus-dir", str(tmp_path),
                 "--log", str(tmp_path / "log.jsonl")] + _FAST)
    assert code == 0
    out = capsys.readouterr().out
    assert "no divergence, no crashes, no hangs" in out
    lines = (tmp_path / "log.jsonl").read_text().splitlines()
    assert len(lines) == 2
    entry = json.loads(lines[0])
    assert entry["verdict"] == "ok"
    assert "wall_seconds" not in entry  # logs must diff clean across runs


def test_findings_map_to_exit_18(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(executor_mod, "compile_for_model",
                        sabotaged_compile)
    code = main(["fuzz", "run", "--budget", "2", "--seed", "0xbadc0de",
                 "--corpus-dir", str(tmp_path), "--no-reduce"] + _FAST)
    assert code == 18
    captured = capsys.readouterr()
    assert "error[FuzzFindingsError]" in captured.err
    assert "saved corpus/finding-" in captured.out


def test_seed_and_replay_roundtrip(tmp_path, capsys):
    assert main(["fuzz", "seed", "--corpus-dir", str(tmp_path),
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "seeded" in out
    assert main(["fuzz", "corpus", "--corpus-dir", str(tmp_path)]) == 0
    assert "seed-wc" in capsys.readouterr().out
    assert main(["fuzz", "replay", "seed-wc",
                 "--corpus-dir", str(tmp_path)] + _FAST) == 0
    assert "0 failure(s)" in capsys.readouterr().out


def test_replay_all_fails_on_stale_expectation(tmp_path, capsys):
    # An entry that expects a finding but now runs clean must fail
    # replay: its expectation is stale and needs updating.
    from repro.fuzz.corpus import CorpusEntry, save_entry
    save_entry(CorpusEntry(entry_id="finding-stale",
                           source="int main() { return 3; }\n",
                           expect="finding"), tmp_path)
    code = main(["fuzz", "replay", "--all",
                 "--corpus-dir", str(tmp_path)] + _FAST)
    assert code == 18
    assert "FAIL (ok)" in capsys.readouterr().out


def test_replay_without_target_is_usage_error(tmp_path, capsys):
    assert main(["fuzz", "replay",
                 "--corpus-dir", str(tmp_path)] + _FAST) == 2


def test_empty_corpus_messages(tmp_path, capsys):
    assert main(["fuzz", "corpus", "--corpus-dir",
                 str(tmp_path / "none")]) == 0
    assert "corpus is empty" in capsys.readouterr().out


def test_bench_json_carries_fuzz_throughput(tmp_path):
    bench = tmp_path / "bench.json"
    code = main(["fuzz", "run", "--budget", "1", "--seed", "1",
                 "--corpus-dir", str(tmp_path),
                 "--bench-json", str(bench)] + _FAST)
    assert code == 0
    data = json.loads(bench.read_text())
    assert data["fuzz_cases"] == 1
    assert data["fuzz_cases_per_second"] > 0
