"""Generator: determinism, profile rotation, and program validity."""

from __future__ import annotations

import pytest

from repro.emu.interpreter import run_program
from repro.fuzz.generator import (FUZZ_PROFILES, PROFILE_ORDER, FuzzKnobs,
                                  generate_case, generate_source,
                                  profile_for_index)
from repro.toolchain import frontend


def test_same_seed_same_case():
    a = generate_case(0xabc, 7)
    b = generate_case(0xabc, 7)
    assert a == b


def test_different_indices_differ():
    sources = {generate_case(0xabc, i).source for i in range(8)}
    assert len(sources) == 8


def test_case_id_encodes_seed_and_index():
    case = generate_case(0xfeed, 3)
    assert case.case_id == "case-feed-00003"


def test_profile_rotation_covers_all_profiles():
    seen = {generate_case(1, i).profile
            for i in range(len(PROFILE_ORDER))}
    assert seen == set(FUZZ_PROFILES)


def test_profile_for_index_matches_generated_case():
    for i in (0, 3, 11):
        knobs = profile_for_index(i)
        assert generate_case(1, i).profile == knobs.profile


@pytest.mark.parametrize("index", range(10))
def test_generated_programs_compile_and_terminate(index):
    case = generate_case(0x5eed, index)
    program = frontend(case.source)
    result = run_program(program, inputs=case.inputs,
                         max_steps=300_000)
    assert isinstance(result.return_value, int)


def test_one_statement_per_line_for_reduction():
    # The reducer removes whole lines; every opening brace must sit at
    # end-of-line and every region must close on a bare `}` line.
    source, _ = generate_source(99, FuzzKnobs())
    depth = 0
    for line in source.splitlines():
        stripped = line.strip()
        if "{" in stripped:
            assert stripped.endswith("{")
        depth += stripped.count("{") - stripped.count("}")
        assert depth >= 0
    assert depth == 0


def test_inputs_are_json_clean():
    case = generate_case(0x77, 2)
    for name, values in case.inputs.items():
        assert isinstance(name, str)
        assert isinstance(values, list)
        assert all(isinstance(v, (int, float)) for v in values)
