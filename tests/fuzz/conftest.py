"""Shared fuzz-test helpers: a fast executor config and a synthetic
miscompile injector."""

from __future__ import annotations

import pytest

from repro.fuzz.executor import ExecutorConfig
from repro.ir.opcodes import OpCategory
from repro.ir.operands import Imm
from repro.toolchain import Model, compile_for_model


@pytest.fixture
def fast_config() -> ExecutorConfig:
    """Small budgets: fuzz-generated programs finish in thousands of
    steps, and tests must fail fast when they don't."""
    return ExecutorConfig(max_steps=300_000, wall_budget=20.0)


def bump_first_imm(program) -> bool:
    """Corrupt every integer ALU immediate of ``main`` in place.

    The canonical *synthetic miscompile*: the mutated constants change
    what the program computes, so any model compiled through it
    diverges from the reference on a real observable.  (Bumping just
    one constant is not enough — after constant folding the first
    immediate is often dead in the observable fold.)
    """
    bumped = False
    for block in program.functions["main"].blocks:
        for inst in block.instructions:
            if inst.cat is not OpCategory.ALU or inst.dest is None:
                continue
            srcs = list(inst.srcs)
            for idx, src in enumerate(srcs):
                if isinstance(src, Imm) and isinstance(src.value, int):
                    srcs[idx] = Imm(src.value + 1)
                    bumped = True
            inst.srcs = tuple(srcs)
    return bumped


def sabotaged_compile(base, model, profile, machine, options=None):
    """Drop-in for ``compile_for_model`` that miscompiles CMOV only."""
    compiled = compile_for_model(base, model, profile, machine, options)
    if model is Model.CMOV:
        bump_first_imm(compiled.program)
    return compiled
