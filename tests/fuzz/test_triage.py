"""Triage: signature normalization, fingerprints, deduplication."""

from __future__ import annotations

import pytest

from repro.fuzz.executor import CaseReport
from repro.fuzz.triage import (CrashSignature, dedupe, first_store_divergence,
                               frame_fingerprint, signature_of, store_stream)
from repro.robustness.errors import (CompileError, EmulationTimeout,
                                     ModelDivergenceError)


def test_divergence_signature_carries_kind_and_model():
    exc = ModelDivergenceError("boom", workload="w", model="Conditional "
                               "Move", kind="return-value")
    sig = signature_of(exc)
    assert sig.kind == "divergence"
    assert sig.detail[0] == "return-value"
    assert sig.detail[1] == "Conditional Move"


def test_divergence_signature_includes_first_event():
    exc = ModelDivergenceError("boom", model="m", kind="output-stream")
    exc.first_event = "store#3 @0x1a0 7 vs 9"
    assert "store#3 @0x1a0 7 vs 9" in signature_of(exc).detail


def test_timeout_signature_has_no_budget_text():
    a = EmulationTimeout("exceeded 1s after 100 steps")
    b = EmulationTimeout("exceeded 9s after 999999 steps")
    assert signature_of(a) == signature_of(b)
    assert signature_of(a).kind == "hang"


def test_crash_fingerprint_is_stable_across_line_edits():
    # Fingerprints are module:function pairs — no line numbers — so two
    # raises from the same function match even if the file shifted.
    def _raise():
        raise ValueError("x")

    fingerprints = []
    for _ in range(2):
        try:
            _raise()
        except ValueError as exc:
            fingerprints.append(frame_fingerprint(exc))
    assert fingerprints[0] == fingerprints[1]


def test_compile_crash_signature_names_pass():
    exc = CompileError("pass blew up", pass_name="if-conversion")
    sig = signature_of(exc)
    assert sig.kind == "compile-crash"
    assert "if-conversion" in sig.detail


def test_signature_key_stable_and_short():
    sig = CrashSignature("divergence", "ModelDivergenceError",
                         ("return-value", "m"))
    assert sig.key == CrashSignature.from_dict(sig.to_dict()).key
    assert len(sig.key) == 12


def test_dedupe_groups_by_key():
    sig_a = CrashSignature("divergence", "E", ("x",)).to_dict()
    sig_b = CrashSignature("divergence", "E", ("y",)).to_dict()
    reports = [
        CaseReport("c1", 1, "p", "finding", signature=sig_a),
        CaseReport("c2", 2, "p", "finding", signature=sig_a),
        CaseReport("c3", 3, "p", "finding", signature=sig_b),
    ]
    buckets = dedupe(reports)
    assert len(buckets) == 2
    counts = sorted(b.count for b in buckets.values())
    assert counts == [1, 2]
    assert buckets[CrashSignature.from_dict(sig_a).key].case_ids == \
        ["c1", "c2"]


class _Inst:
    def __init__(self, cat):
        self.cat = cat


class _Event:
    def __init__(self, executed, addr, value, cat):
        self.executed = executed
        self.addr = addr
        self.value = value
        self.inst = _Inst(cat)


def test_store_stream_excludes_safe_addr_and_nullified():
    from repro.emu.memory import SAFE_ADDR
    from repro.ir.opcodes import OpCategory
    events = [
        _Event(True, 0x100, 7, OpCategory.STORE),
        _Event(False, 0x104, 8, OpCategory.STORE),   # nullified
        _Event(True, SAFE_ADDR, 9, OpCategory.STORE),  # redirected
        _Event(True, 0x108, 10, OpCategory.ALU),     # not a store
    ]
    assert store_stream(events) == [(0x100, 7)]


def test_first_store_divergence_localizes():
    from repro.ir.opcodes import OpCategory
    ref = [_Event(True, 0x100, 1, OpCategory.STORE),
           _Event(True, 0x104, 2, OpCategory.STORE)]
    cand = [_Event(True, 0x100, 1, OpCategory.STORE),
            _Event(True, 0x104, 3, OpCategory.STORE)]
    detail = first_store_divergence(cand, ref)
    assert detail is not None and "store#1" in detail
    assert first_store_divergence(ref, ref) is None
    assert "store-count" in first_store_divergence(cand[:1], ref)
