"""Executor: clean cases, classified findings, divergence localization."""

from __future__ import annotations

import pytest

import repro.fuzz.executor as executor_mod
from repro.fuzz.executor import CaseReport, run_case
from repro.fuzz.generator import FuzzCase, generate_case

from tests.fuzz.conftest import sabotaged_compile


def _hand_case(source: str, inputs: dict | None = None) -> FuzzCase:
    return FuzzCase(case_id="hand-case", seed=0, profile="hand",
                    source=source, inputs=inputs or {})


def test_clean_case_reports_ok(fast_config):
    report = run_case(generate_case(0xfeed, 0), fast_config)
    assert report.verdict == "ok"
    assert report.signature is None
    assert report.case_id == "case-feed-00000"


def test_emulation_fault_is_classified(fast_config):
    report = run_case(_hand_case("""
int d;
int main() {
  return 7 / d;
}
""", {"d": [0]}), fast_config)
    assert report.is_finding
    assert report.signature["kind"] == "emulation-fault"


def test_step_limit_is_classified(fast_config):
    report = run_case(_hand_case("""
int main() {
  int i;
  i = 0;
  while (i < 10) { i = i * 1; }
  return i;
}
"""), fast_config)
    assert report.is_finding
    assert report.signature["kind"] == "emulation-fault"
    assert report.signature["error_type"] == "StepLimitExceeded"


def test_frontend_reject_is_classified(fast_config):
    report = run_case(_hand_case("int main() { return %%; }"),
                      fast_config)
    assert report.is_finding
    assert report.signature["kind"] == "frontend-reject"


def test_injected_miscompile_yields_divergence(fast_config,
                                               monkeypatch):
    monkeypatch.setattr(executor_mod, "compile_for_model",
                        sabotaged_compile)
    report = run_case(generate_case(0xbadc0de, 1), fast_config)
    assert report.is_finding
    assert report.signature["kind"] == "divergence"
    assert report.signature["error_type"] == "ModelDivergenceError"
    assert "Conditional Move" in report.signature["detail"]


def test_output_stream_divergence_is_localized(fast_config,
                                               monkeypatch):
    # Scan injected campaigns until one diverges on the store stream;
    # its signature must pin the first divergent store event.
    monkeypatch.setattr(executor_mod, "compile_for_model",
                        sabotaged_compile)
    for index in range(12):
        report = run_case(generate_case(0xbadc0de, index), fast_config)
        if not report.is_finding:
            continue
        if report.signature["detail"][0] != "output-stream":
            continue
        assert any(d.startswith(("store#", "store-count"))
                   for d in report.signature["detail"])
        return
    pytest.skip("no store-stream divergence in the scanned window")


def test_report_roundtrips_through_dict(fast_config):
    report = run_case(generate_case(0xfeed, 2), fast_config)
    clone = CaseReport.from_dict(report.to_dict())
    assert clone.case_id == report.case_id
    assert clone.verdict == report.verdict
    assert clone.signature == report.signature


def test_minimized_store_order_case_stays_clean(fast_config):
    # The first real bug the fuzzer caught (case-feed-00204): the block
    # scheduler emitted two provably-independent global stores in
    # priority order rather than program order, so the superblock store
    # stream diverged from both predicated models.  The minimized
    # reproducer is pinned in the corpus; all three models must agree.
    from repro.fuzz.corpus import load_entry

    entry = load_entry("regress-store-stream-order")
    case = FuzzCase(case_id=entry.entry_id, seed=0, profile="corpus",
                    source=entry.source, inputs=entry.inputs)
    report = run_case(case, fast_config)
    assert report.verdict == "ok", report.message
