"""Cycle-simulator behaviour on hand-built traces."""

from repro.emu.trace import TraceEvent
from repro.ir import GlobalAddr, Imm, Instruction, Opcode, PReg, VReg
from repro.machine.descriptor import (CacheConfig, MachineDescription)
from repro.sim.pipeline import assign_addresses, simulate_trace


def _machine(width=4, branches=1, perfect=True, dcache=None, icache=None):
    m = MachineDescription(issue_width=width, branch_issue_limit=branches)
    if not perfect:
        m = m.with_real_caches(icache or CacheConfig(),
                               dcache or CacheConfig())
    return m


def _addresses(insts):
    return {inst.uid: 4 * k for k, inst in enumerate(insts)}


def _alu(dest, a, b):
    return Instruction(Opcode.ADD, dest=VReg(dest), srcs=(VReg(a),
                                                          VReg(b)))


def test_independent_instructions_pack():
    insts = [_alu(k, 10 + k, 20 + k) for k in range(4)]
    trace = [TraceEvent(i, True, False, -1) for i in insts]
    stats = simulate_trace(trace, _addresses(insts), _machine(width=4))
    assert stats.cycles == 1


def test_issue_width_splits_cycles():
    insts = [_alu(k, 10 + k, 20 + k) for k in range(4)]
    trace = [TraceEvent(i, True, False, -1) for i in insts]
    stats = simulate_trace(trace, _addresses(insts), _machine(width=2))
    assert stats.cycles == 2


def test_raw_interlock_stalls():
    a = _alu(0, 10, 11)
    b = Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(0), VReg(12)))
    trace = [TraceEvent(a, True, False, -1), TraceEvent(b, True, False, -1)]
    stats = simulate_trace(trace, _addresses([a, b]), _machine())
    assert stats.cycles == 2  # 1-cycle ALU latency


def test_load_use_delay():
    load = Instruction(Opcode.LOAD, dest=VReg(0),
                       srcs=(GlobalAddr("g"), Imm(0)))
    use = Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(0), VReg(2)))
    trace = [TraceEvent(load, True, False, 64),
             TraceEvent(use, True, False, -1)]
    stats = simulate_trace(trace, _addresses([load, use]), _machine())
    assert stats.cycles == 3  # load latency 2


def test_branch_limit_one_per_cycle():
    branches = [Instruction(Opcode.BEQ, srcs=(VReg(9), Imm(k)),
                            target="x") for k in range(3)]
    trace = [TraceEvent(b, True, False, -1) for b in branches]
    stats = simulate_trace(trace, _addresses(branches),
                           _machine(width=8, branches=1))
    assert stats.cycles == 3
    stats2 = simulate_trace(trace, _addresses(branches),
                            _machine(width=8, branches=2))
    assert stats2.cycles == 2


def test_misprediction_penalty():
    # A cold taken branch mispredicts (BTB predicts not-taken).
    br = Instruction(Opcode.BEQ, srcs=(VReg(9), Imm(0)), target="x")
    after = _alu(0, 10, 11)
    trace = [TraceEvent(br, True, True, -1),
             TraceEvent(after, True, False, -1)]
    stats = simulate_trace(trace, _addresses([br, after]), _machine())
    assert stats.mispredictions == 1
    # Fetch resumes after 1 + 2 penalty cycles.
    assert stats.cycles == 4


def test_suppressed_instructions_consume_slots_only():
    guard = PReg(1)
    nullified = Instruction(Opcode.ADD, dest=VReg(0),
                            srcs=(VReg(1), VReg(2)), pred=guard)
    trace = [TraceEvent(nullified, False, False, -1)]
    stats = simulate_trace(trace, _addresses([nullified]), _machine())
    assert stats.suppressed_instructions == 1
    assert stats.executed_instructions == 0
    assert stats.dynamic_instructions == 1


def test_suppressed_branch_counts_and_predicts():
    guard = PReg(1)
    br = Instruction(Opcode.BEQ, srcs=(VReg(9), Imm(0)), target="x",
                     pred=guard)
    trace = [TraceEvent(br, False, False, -1)]
    stats = simulate_trace(trace, _addresses([br]), _machine())
    assert stats.branches == 1
    assert stats.mispredictions == 0  # not-taken matches cold predict


def test_predicated_jump_is_a_branch():
    jump = Instruction(Opcode.JUMP, target="x", pred=PReg(1))
    trace = [TraceEvent(jump, True, True, -1)]
    stats = simulate_trace(trace, _addresses([jump]), _machine())
    assert stats.branches == 1
    assert stats.mispredictions == 1  # cold -> predicted not-executed


def test_unconditional_jump_no_prediction():
    jump = Instruction(Opcode.JUMP, target="x")
    trace = [TraceEvent(jump, True, True, -1)]
    stats = simulate_trace(trace, _addresses([jump]), _machine())
    assert stats.branches == 0
    assert stats.mispredictions == 0


def test_dcache_miss_extends_load_latency():
    load = Instruction(Opcode.LOAD, dest=VReg(0),
                       srcs=(GlobalAddr("g"), Imm(0)))
    use = Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(0), VReg(2)))
    trace = [TraceEvent(load, True, False, 4096),
             TraceEvent(use, True, False, -1)]
    machine = _machine(perfect=False)
    stats = simulate_trace(trace, _addresses([load, use]), machine)
    assert stats.dcache_misses == 1
    # One cold icache miss stalls fetch, then the load's dcache miss
    # extends its latency by the miss penalty.
    assert stats.cycles == 3 + machine.dcache.miss_penalty \
        + machine.icache.miss_penalty


def test_icache_miss_stalls_fetch():
    insts = [_alu(k, 10 + k, 20 + k) for k in range(2)]
    addresses = {insts[0].uid: 0, insts[1].uid: 4096}
    trace = [TraceEvent(i, True, False, -1) for i in insts]
    machine = _machine(perfect=False)
    stats = simulate_trace(trace, addresses, machine)
    assert stats.icache_misses == 2  # two cold lines
    assert stats.cycles > 2 * machine.icache.miss_penalty


def test_icache_hits_within_line():
    insts = [_alu(k, 10 + k, 20 + k) for k in range(8)]
    trace = [TraceEvent(i, True, False, -1) for i in insts]
    machine = _machine(width=1, perfect=False)
    stats = simulate_trace(trace, _addresses(insts), machine)
    assert stats.icache_misses == 1  # all eight fit in one 64B line


def test_store_write_through_no_stall():
    store = Instruction(Opcode.STORE, srcs=(GlobalAddr("g"), Imm(0),
                                            VReg(1)))
    after = _alu(0, 10, 11)
    trace = [TraceEvent(store, True, False, 512),
             TraceEvent(after, True, False, -1)]
    machine = _machine(width=1, perfect=False)
    stats = simulate_trace(trace, _addresses([store, after]), machine)
    assert stats.dcache_misses == 1
    # Beyond the cold icache fill, the store miss adds no stall.
    assert stats.cycles == 2 + machine.icache.miss_penalty


def test_assign_addresses_layout():
    from repro.lang import compile_minic
    prog = compile_minic("int main() { return 1 + 2; }")
    addresses = assign_addresses(prog)
    values = sorted(addresses.values())
    assert values[0] == 0
    assert all(b - a == 4 for a, b in zip(values, values[1:]))
