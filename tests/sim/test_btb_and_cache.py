"""Branch target buffer and cache model tests."""

from repro.machine.descriptor import BTBConfig, CacheConfig
from repro.sim.btb import BranchTargetBuffer
from repro.sim.cache import DirectMappedCache


def _btb(entries=16):
    return BranchTargetBuffer(BTBConfig(entries=entries))


def test_cold_btb_predicts_not_taken():
    btb = _btb()
    assert btb.predict_and_update(0x40, True)       # miss -> NT, actual T
    assert not btb.predict_and_update(0x44, False)  # miss -> NT, actual NT


def test_counter_trains_toward_taken():
    btb = _btb()
    addr = 0x80
    btb.predict_and_update(addr, True)   # allocate, counter=2
    assert not btb.predict_and_update(addr, True)
    assert not btb.predict_and_update(addr, True)


def test_hysteresis_survives_one_not_taken():
    btb = _btb()
    addr = 0x80
    btb.predict_and_update(addr, True)      # allocate at 2
    btb.predict_and_update(addr, True)      # -> 3
    assert btb.predict_and_update(addr, False)      # predicted T, was NT
    # One NT only drops to 2: still predicts taken.
    assert not btb.predict_and_update(addr, True)


def test_alternating_branch_mispredicts_often():
    btb = _btb()
    addr = 0x100
    mispredicts = sum(
        1 for k in range(40)
        if btb.predict_and_update(addr, k % 2 == 0))
    assert mispredicts >= 15


def test_aliasing_between_entries():
    btb = _btb(entries=4)
    a = 0x10          # index (0x10>>2) % 4 == 0
    b = 0x10 + 4 * 4  # same index, different tag
    btb.predict_and_update(a, True)
    btb.predict_and_update(a, True)
    # b evicts a's entry on its taken branch.
    btb.predict_and_update(b, True)
    # a now misses -> predicted NT -> mispredict when taken.
    assert btb.predict_and_update(a, True)


def test_mispredictions_counted():
    btb = _btb()
    btb.predict_and_update(0x4, True)
    btb.predict_and_update(0x4, True)
    assert btb.predictions == 2
    assert btb.mispredictions == 1


def test_cache_cold_miss_then_hit():
    cache = DirectMappedCache(CacheConfig(size_bytes=1024))
    assert not cache.access(0)
    assert cache.access(0)
    assert cache.access(63)      # same 64-byte line
    assert not cache.access(64)  # next line


def test_cache_conflict_eviction():
    cache = DirectMappedCache(CacheConfig(size_bytes=128, line_bytes=64))
    assert cache.num_lines == 2
    assert not cache.access(0)
    assert not cache.access(128)   # maps to line 0: evicts
    assert not cache.access(0)     # miss again


def test_write_no_allocate():
    cache = DirectMappedCache(CacheConfig(size_bytes=1024))
    assert not cache.access(0, allocate=False)
    assert not cache.access(0)     # still not resident


def test_miss_rate():
    cache = DirectMappedCache(CacheConfig(size_bytes=1024))
    cache.access(0)
    cache.access(0)
    cache.access(0)
    assert cache.miss_rate == 1 / 3
