"""Constant folding and copy propagation."""

from repro.ir import (BasicBlock, Function, Imm, Instruction, Opcode,
                      PReg, VReg)
from repro.opt.copyprop import propagate_copies
from repro.opt.fold import fold_constants


def fn_with(insts) -> Function:
    fn = Function("f")
    block = fn.new_block("entry")
    block.instructions = list(insts)
    block.append(Instruction(Opcode.RET, srcs=()))
    return fn


def test_fold_add():
    fn = fn_with([Instruction(Opcode.ADD, dest=VReg(0),
                              srcs=(Imm(2), Imm(3)))])
    assert fold_constants(fn)
    inst = fn.entry.instructions[0]
    assert inst.op is Opcode.MOV
    assert inst.srcs == (Imm(5),)


def test_fold_wraps_32_bits():
    fn = fn_with([Instruction(Opcode.ADD, dest=VReg(0),
                              srcs=(Imm(0x7FFFFFFF), Imm(1)))])
    fold_constants(fn)
    assert fn.entry.instructions[0].srcs == (Imm(-0x80000000),)


def test_fold_c_division():
    fn = fn_with([Instruction(Opcode.DIV, dest=VReg(0),
                              srcs=(Imm(-7), Imm(2)))])
    fold_constants(fn)
    assert fn.entry.instructions[0].srcs == (Imm(-3),)


def test_fold_preserves_divide_by_zero():
    fn = fn_with([Instruction(Opcode.DIV, dest=VReg(0),
                              srcs=(Imm(1), Imm(0)))])
    fold_constants(fn)
    assert fn.entry.instructions[0].op is Opcode.DIV


def test_fold_comparison():
    fn = fn_with([Instruction(Opcode.CMP_LT, dest=VReg(0),
                              srcs=(Imm(1), Imm(2)))])
    fold_constants(fn)
    assert fn.entry.instructions[0].srcs == (Imm(1),)


def test_algebraic_identities():
    cases = [
        (Opcode.ADD, (VReg(1), Imm(0)), (VReg(1),)),
        (Opcode.MUL, (VReg(1), Imm(1)), (VReg(1),)),
        (Opcode.MUL, (VReg(1), Imm(0)), (Imm(0),)),
        (Opcode.OR, (Imm(0), VReg(1)), (VReg(1),)),
        (Opcode.SHL, (VReg(1), Imm(0)), (VReg(1),)),
    ]
    for op, srcs, expected in cases:
        fn = fn_with([Instruction(op, dest=VReg(0), srcs=srcs)])
        assert fold_constants(fn), op
        folded = fn.entry.instructions[0]
        assert folded.op is Opcode.MOV
        assert folded.srcs == expected


def test_fold_constant_branch_taken():
    fn = Function("f")
    a = fn.new_block("a")
    a.append(Instruction(Opcode.BEQ, srcs=(Imm(1), Imm(1)), target="b"))
    a.append(Instruction(Opcode.RET))
    b = fn.new_block("b")
    b.append(Instruction(Opcode.RET))
    fold_constants(fn)
    assert fn.block("a").instructions[0].op is Opcode.JUMP


def test_fold_constant_branch_not_taken():
    fn = Function("f")
    a = fn.new_block("a")
    a.append(Instruction(Opcode.BEQ, srcs=(Imm(1), Imm(2)), target="b"))
    a.append(Instruction(Opcode.RET))
    fn.new_block("b").append(Instruction(Opcode.RET))
    fold_constants(fn)
    assert fn.block("a").instructions[0].op is Opcode.RET


def test_fold_float():
    fn = fn_with([Instruction(Opcode.FADD, dest=VReg(0),
                              srcs=(Imm(1.5), Imm(2.25)))])
    fold_constants(fn)
    folded = fn.entry.instructions[0]
    assert folded.op is Opcode.FMOV
    assert folded.srcs == (Imm(3.75),)


def test_copyprop_through_mov():
    fn = fn_with([
        Instruction(Opcode.MOV, dest=VReg(0), srcs=(VReg(9),)),
        Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(0), Imm(1))),
    ])
    assert propagate_copies(fn)
    assert fn.entry.instructions[1].srcs == (VReg(9), Imm(1))


def test_copyprop_constant():
    fn = fn_with([
        Instruction(Opcode.MOV, dest=VReg(0), srcs=(Imm(7),)),
        Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(0), VReg(0))),
    ])
    propagate_copies(fn)
    assert fn.entry.instructions[1].srcs == (Imm(7), Imm(7))


def test_copyprop_killed_by_redefinition():
    fn = fn_with([
        Instruction(Opcode.MOV, dest=VReg(0), srcs=(VReg(9),)),
        Instruction(Opcode.MOV, dest=VReg(9), srcs=(Imm(0),)),
        Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(0), Imm(1))),
    ])
    propagate_copies(fn)
    # r0's copy source r9 was clobbered: the use must NOT be rewritten.
    assert fn.entry.instructions[2].srcs == (VReg(0), Imm(1))


def test_copyprop_ignores_guarded_movs():
    fn = fn_with([
        Instruction(Opcode.MOV, dest=VReg(0), srcs=(VReg(9),),
                    pred=PReg(1)),
        Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(0), Imm(1))),
    ])
    propagate_copies(fn)
    assert fn.entry.instructions[1].srcs == (VReg(0), Imm(1))
