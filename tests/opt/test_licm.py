"""Loop-invariant code motion tests."""

from repro.analysis.loops import find_loops
from repro.emu import run_program
from repro.ir import Opcode
from repro.lang import compile_minic
from repro.opt import optimize_program
from repro.opt.licm import hoist_loop_invariants

SRC = """
int limit;
int total;
int main() {
  int i;
  for (i = 0; i < limit; i = i + 1) {
    total = total + i;
  }
  return total;
}
"""


def test_limit_load_hoisted_to_preheader():
    prog = compile_minic(SRC)
    optimize_program(prog)
    fn = prog.functions["main"]
    inputs = {"limit": [50]}
    golden = run_program(prog, inputs=inputs).return_value
    hoisted = hoist_loop_invariants(fn)
    assert hoisted >= 1
    # A preheader block exists and holds the hoisted load.
    pre = [b for b in fn.blocks if ".pre" in b.name]
    assert pre
    assert any(i.op is Opcode.LOAD for i in pre[0].instructions)
    # The loop header no longer reloads the loop bound.
    loops = find_loops(fn)
    header = fn.block(loops[0].header)
    assert run_program(prog, inputs=inputs).return_value == golden
    del header


def test_hoisting_reduces_dynamic_count():
    prog = compile_minic(SRC)
    optimize_program(prog)
    inputs = {"limit": [80]}
    before = run_program(prog, inputs=inputs).dynamic_count
    hoist_loop_invariants(prog.functions["main"])
    after = run_program(prog, inputs=inputs).dynamic_count
    assert after < before


def test_stored_global_not_hoisted():
    src = """
    int bound;
    int main() {
      int i; int acc;
      acc = 0;
      for (i = 0; i < bound; i = i + 1) {
        acc = acc + bound;
        if (i == 3) bound = 10;
      }
      return acc;
    }
    """
    prog = compile_minic(src)
    optimize_program(prog)
    inputs = {"bound": [30]}
    golden = run_program(prog, inputs=inputs).return_value
    hoist_loop_invariants(prog.functions["main"])
    assert run_program(prog, inputs=inputs).return_value == golden
    assert golden == run_program(prog, inputs=inputs).return_value


def test_call_in_loop_blocks_load_hoisting():
    src = """
    int g;
    int bump() { g = g + 1; return g; }
    int main() {
      int i; int acc;
      acc = 0;
      for (i = 0; i < 5; i = i + 1) {
        acc = acc + g;
        bump();
      }
      return acc;
    }
    """
    prog = compile_minic(src)
    optimize_program(prog)
    golden = run_program(prog).return_value
    hoist_loop_invariants(prog.functions["main"])
    assert run_program(prog).return_value == golden
    assert golden == 0 + 1 + 2 + 3 + 4


def test_zero_trip_loop_stays_correct():
    prog = compile_minic(SRC)
    optimize_program(prog)
    hoist_loop_invariants(prog.functions["main"])
    assert run_program(prog, inputs={"limit": [0]}).return_value == 0
