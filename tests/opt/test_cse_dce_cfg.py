"""CSE, DCE and CFG cleanup."""

from repro.ir import (BasicBlock, Function, GlobalAddr, Imm, Instruction,
                      Opcode, PReg, VReg)
from repro.opt.cfg_cleanup import (cleanup_cfg, make_jumps_explicit,
                                   merge_straightline,
                                   normalize_basic_blocks, relayout,
                                   remove_unreachable,
                                   thread_trivial_jumps)
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code


def fn_with(insts) -> Function:
    fn = Function("f")
    block = fn.new_block("entry")
    block.instructions = list(insts)
    block.append(Instruction(Opcode.RET, srcs=(VReg(99),)))
    return fn


def test_cse_merges_duplicate_expressions():
    fn = fn_with([
        Instruction(Opcode.ADD, dest=VReg(0), srcs=(VReg(8), VReg(9))),
        Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(8), VReg(9))),
    ])
    assert eliminate_common_subexpressions(fn)
    second = fn.entry.instructions[1]
    assert second.op is Opcode.MOV
    assert second.srcs == (VReg(0),)


def test_cse_respects_commutativity():
    fn = fn_with([
        Instruction(Opcode.ADD, dest=VReg(0), srcs=(VReg(8), VReg(9))),
        Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(9), VReg(8))),
    ])
    assert eliminate_common_subexpressions(fn)
    assert fn.entry.instructions[1].op is Opcode.MOV


def test_cse_not_for_noncommutative_swap():
    fn = fn_with([
        Instruction(Opcode.SUB, dest=VReg(0), srcs=(VReg(8), VReg(9))),
        Instruction(Opcode.SUB, dest=VReg(1), srcs=(VReg(9), VReg(8))),
    ])
    eliminate_common_subexpressions(fn)
    assert fn.entry.instructions[1].op is Opcode.SUB


def test_cse_invalidated_by_operand_redefinition():
    fn = fn_with([
        Instruction(Opcode.ADD, dest=VReg(0), srcs=(VReg(8), VReg(9))),
        Instruction(Opcode.MOV, dest=VReg(8), srcs=(Imm(0),)),
        Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(8), VReg(9))),
    ])
    eliminate_common_subexpressions(fn)
    assert fn.entry.instructions[2].op is Opcode.ADD


def test_cse_loads_blocked_by_store():
    addr = GlobalAddr("g")
    fn = fn_with([
        Instruction(Opcode.LOAD, dest=VReg(0), srcs=(addr, Imm(0))),
        Instruction(Opcode.STORE, srcs=(addr, Imm(0), VReg(5))),
        Instruction(Opcode.LOAD, dest=VReg(1), srcs=(addr, Imm(0))),
    ])
    eliminate_common_subexpressions(fn)
    assert fn.entry.instructions[2].op is Opcode.LOAD


def test_cse_loads_merge_without_store():
    addr = GlobalAddr("g")
    fn = fn_with([
        Instruction(Opcode.LOAD, dest=VReg(0), srcs=(addr, Imm(0))),
        Instruction(Opcode.LOAD, dest=VReg(1), srcs=(addr, Imm(0))),
    ])
    assert eliminate_common_subexpressions(fn)
    assert fn.entry.instructions[1].op is Opcode.MOV


def test_cse_skips_self_update():
    fn = fn_with([
        Instruction(Opcode.ADD, dest=VReg(8), srcs=(VReg(8), Imm(1))),
        Instruction(Opcode.ADD, dest=VReg(1), srcs=(VReg(8), Imm(1))),
    ])
    eliminate_common_subexpressions(fn)
    assert fn.entry.instructions[1].op is Opcode.ADD


def test_dce_removes_dead_pure_code():
    fn = fn_with([
        Instruction(Opcode.ADD, dest=VReg(0), srcs=(Imm(1), Imm(2))),
        Instruction(Opcode.MOV, dest=VReg(99), srcs=(Imm(7),)),
    ])
    assert eliminate_dead_code(fn)
    ops = [i.op for i in fn.entry.instructions]
    assert Opcode.ADD not in ops


def test_dce_keeps_stores_and_dead_chain():
    fn = fn_with([
        Instruction(Opcode.ADD, dest=VReg(0), srcs=(Imm(1), Imm(2))),
        Instruction(Opcode.MUL, dest=VReg(1), srcs=(VReg(0), Imm(3))),
        Instruction(Opcode.MOV, dest=VReg(99), srcs=(Imm(7),)),
        Instruction(Opcode.STORE, srcs=(GlobalAddr("g"), Imm(0),
                                        VReg(99))),
    ])
    eliminate_dead_code(fn)
    ops = [i.op for i in fn.entry.instructions]
    # Whole dead chain gone, store retained.
    assert ops == [Opcode.MOV, Opcode.STORE, Opcode.RET]


def test_dce_keeps_exit_path_values():
    """A value needed only on a mid-block exit path must survive even if
    redefined later in the block (the cccp regression)."""
    fn = Function("f")
    entry = fn.new_block("entry")
    entry.append(Instruction(Opcode.MOV, dest=VReg(0), srcs=(Imm(1),)))
    entry.append(Instruction(Opcode.BEQ, srcs=(VReg(5), Imm(0)),
                             target="cold"))
    entry.append(Instruction(Opcode.MOV, dest=VReg(0), srcs=(Imm(2),)))
    entry.append(Instruction(Opcode.RET, srcs=(VReg(0),)))
    cold = fn.new_block("cold")
    cold.append(Instruction(Opcode.RET, srcs=(VReg(0),)))
    eliminate_dead_code(fn)
    assert fn.block("entry").instructions[0].op is Opcode.MOV
    assert len(fn.block("entry").instructions) == 4


def test_remove_unreachable():
    fn = Function("f")
    fn.new_block("entry").append(Instruction(Opcode.RET))
    fn.new_block("island").append(Instruction(Opcode.RET))
    assert remove_unreachable(fn)
    assert [b.name for b in fn.blocks] == ["entry"]


def test_thread_trivial_jumps():
    fn = Function("f")
    a = fn.new_block("a")
    a.append(Instruction(Opcode.BEQ, srcs=(VReg(0), Imm(0)),
                         target="hop"))
    a.append(Instruction(Opcode.RET))
    hop = fn.new_block("hop")
    hop.append(Instruction(Opcode.JUMP, target="end"))
    fn.new_block("end").append(Instruction(Opcode.RET))
    assert thread_trivial_jumps(fn)
    assert fn.block("a").instructions[0].target == "end"


def test_merge_straightline():
    fn = Function("f")
    a = fn.new_block("a")
    a.append(Instruction(Opcode.MOV, dest=VReg(0), srcs=(Imm(1),)))
    a.append(Instruction(Opcode.JUMP, target="b"))
    b = fn.new_block("b")
    b.append(Instruction(Opcode.RET, srcs=(VReg(0),)))
    assert merge_straightline(fn)
    assert len(fn.blocks) == 1
    assert fn.entry.instructions[-1].op is Opcode.RET


def test_merge_straightline_collapses_long_chain():
    # Regression: the fuzzer's diamond-heavy programs produce jump
    # chains thousands of blocks long; merging once restarted the whole
    # scan per merged block (minutes of compile time for one witness).
    # The chain-following rewrite must collapse the chain and keep the
    # instruction order intact.
    n = 400
    fn = Function("f")
    for i in range(n):
        block = fn.new_block(f"b{i}")
        block.append(Instruction(Opcode.MOV, dest=VReg(i),
                                 srcs=(Imm(i),)))
        if i + 1 < n:
            block.append(Instruction(Opcode.JUMP, target=f"b{i + 1}"))
        else:
            block.append(Instruction(Opcode.RET, srcs=(VReg(0),)))
    assert merge_straightline(fn)
    assert len(fn.blocks) == 1
    movs = [inst.srcs[0].value for inst in fn.entry.instructions
            if inst.op is Opcode.MOV]
    assert movs == list(range(n))
    assert fn.entry.instructions[-1].op is Opcode.RET


def test_merge_straightline_keeps_doubly_referenced_target():
    # `a` both branches and jumps to `b`: the jump is not the only edge
    # into `b`, so merging would strand the conditional branch.
    fn = Function("f")
    a = fn.new_block("a")
    a.append(Instruction(Opcode.BEQ, srcs=(VReg(0), Imm(0)),
                         target="b"))
    a.append(Instruction(Opcode.JUMP, target="b"))
    b = fn.new_block("b")
    b.append(Instruction(Opcode.RET, srcs=(VReg(0),)))
    assert not merge_straightline(fn)
    assert len(fn.blocks) == 2


def test_merge_straightline_missing_target_raises():
    # A dangling jump target must fail loudly (KeyError from the CFG
    # predecessor map, or IRError from the merge itself), never merge.
    from repro.ir.function import IRError
    fn = Function("f")
    a = fn.new_block("a")
    a.append(Instruction(Opcode.JUMP, target="ghost"))
    try:
        merge_straightline(fn)
    except (IRError, KeyError):
        pass
    else:  # pragma: no cover - regression guard
        raise AssertionError("dangling jump target must raise")


def test_normalize_splits_interior_branches():
    fn = Function("f")
    a = fn.new_block("a")
    a.append(Instruction(Opcode.BEQ, srcs=(VReg(0), Imm(0)), target="a"))
    a.append(Instruction(Opcode.MOV, dest=VReg(1), srcs=(Imm(2),)))
    a.append(Instruction(Opcode.RET, srcs=(VReg(1),)))
    normalize_basic_blocks(fn)
    assert len(fn.blocks) == 2
    first = fn.blocks[0]
    assert first.instructions[-1].op is Opcode.JUMP
    assert first.instructions[-2].op is Opcode.BEQ


def test_relayout_drops_jump_to_next():
    fn = Function("f")
    a = fn.new_block("a")
    a.append(Instruction(Opcode.JUMP, target="b"))
    b = fn.new_block("b")
    b.append(Instruction(Opcode.RET))
    relayout(fn)
    assert all(i.op is not Opcode.JUMP
               for blk in fn.blocks for i in blk.instructions)


def test_cleanup_cfg_end_to_end():
    fn = Function("f")
    a = fn.new_block("a")
    a.append(Instruction(Opcode.BEQ, srcs=(VReg(0), Imm(0)),
                         target="thread"))
    a.append(Instruction(Opcode.JUMP, target="tail"))
    thread = fn.new_block("thread")
    thread.append(Instruction(Opcode.JUMP, target="tail"))
    tail = fn.new_block("tail")
    tail.append(Instruction(Opcode.RET))
    fn.new_block("dead").append(Instruction(Opcode.RET))
    cleanup_cfg(fn)
    names = [b.name for b in fn.blocks]
    assert "dead" not in names
    assert "thread" not in names
