"""Exhaustive tests of the predicate-define truth table (paper Table 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.instruction import PType
from repro.machine.predicates import (UNCHANGED, apply_pred_define,
                                      is_parallel_type, pred_update)

#: (p_in, cmp) -> expected new value per type; None means unchanged.
#: Transcribed directly from paper Table 1.
TABLE1 = {
    (0, 0): {PType.U: 0, PType.U_BAR: 0, PType.OR: None,
             PType.OR_BAR: None, PType.AND: None, PType.AND_BAR: None},
    (0, 1): {PType.U: 0, PType.U_BAR: 0, PType.OR: None,
             PType.OR_BAR: None, PType.AND: None, PType.AND_BAR: None},
    (1, 0): {PType.U: 0, PType.U_BAR: 1, PType.OR: None,
             PType.OR_BAR: 1, PType.AND: 0, PType.AND_BAR: None},
    (1, 1): {PType.U: 1, PType.U_BAR: 0, PType.OR: 1,
             PType.OR_BAR: None, PType.AND: None, PType.AND_BAR: 0},
}


@pytest.mark.parametrize("p_in", [0, 1])
@pytest.mark.parametrize("cmp_result", [0, 1])
@pytest.mark.parametrize("ptype", list(PType))
def test_truth_table_matches_paper(p_in, cmp_result, ptype):
    expected = TABLE1[(p_in, cmp_result)][ptype]
    assert pred_update(ptype, p_in, cmp_result) == expected


@pytest.mark.parametrize("ptype", list(PType))
@pytest.mark.parametrize("old", [0, 1])
def test_apply_preserves_old_when_unchanged(ptype, old):
    for p_in in (0, 1):
        for cmp_result in (0, 1):
            new = apply_pred_define(ptype, old, p_in, cmp_result)
            raw = pred_update(ptype, p_in, cmp_result)
            if raw is UNCHANGED:
                assert new == old
            else:
                assert new == raw


def test_u_types_always_write():
    """U and U~ define the destination for every input combination."""
    for ptype in (PType.U, PType.U_BAR):
        for p_in in (0, 1):
            for cmp_result in (0, 1):
                assert pred_update(ptype, p_in, cmp_result) is not UNCHANGED


def test_or_types_only_set():
    """OR-types may only write 1 (wired-OR property)."""
    for ptype in (PType.OR, PType.OR_BAR):
        for p_in in (0, 1):
            for cmp_result in (0, 1):
                value = pred_update(ptype, p_in, cmp_result)
                assert value in (UNCHANGED, 1)


def test_and_types_only_clear():
    """AND-types may only write 0 (wired-AND property)."""
    for ptype in (PType.AND, PType.AND_BAR):
        for p_in in (0, 1):
            for cmp_result in (0, 1):
                value = pred_update(ptype, p_in, cmp_result)
                assert value in (UNCHANGED, 0)


def test_complement_pairs():
    assert PType.U.complement is PType.U_BAR
    assert PType.OR.complement is PType.OR_BAR
    assert PType.AND.complement is PType.AND_BAR
    for ptype in PType:
        assert ptype.complement.complement is ptype


def test_parallel_types():
    assert not is_parallel_type(PType.U)
    assert not is_parallel_type(PType.U_BAR)
    for ptype in (PType.OR, PType.OR_BAR, PType.AND, PType.AND_BAR):
        assert is_parallel_type(ptype)


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                min_size=1, max_size=8),
       st.permutations(range(8)))
def test_or_defines_are_order_independent(contribs, perm):
    """Sequences of OR-type defines commute (paper Section 2.1)."""
    order = [i for i in perm if i < len(contribs)]

    def run(sequence):
        value = 0
        for p_in, cmp_result in sequence:
            value = apply_pred_define(PType.OR, value, p_in, cmp_result)
        return value

    natural = run(contribs)
    permuted = run([contribs[i] for i in order] +
                   [c for i, c in enumerate(contribs) if i not in order])
    assert natural == permuted


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                min_size=1, max_size=8))
def test_or_equals_disjunction(contribs):
    """After clearing, OR-accumulation equals the boolean disjunction."""
    value = 0
    for p_in, cmp_result in contribs:
        value = apply_pred_define(PType.OR, value, p_in, cmp_result)
    assert value == (1 if any(p and c for p, c in contribs) else 0)


@given(st.integers(0, 1),
       st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                min_size=1, max_size=8))
def test_and_equals_conjunction(initial, contribs):
    """AND-accumulation clears exactly when some pin∧¬cmp holds."""
    value = initial
    for p_in, cmp_result in contribs:
        value = apply_pred_define(PType.AND, value, p_in, cmp_result)
    cleared = any(p and not c for p, c in contribs)
    assert value == (0 if cleared else initial)
