"""Machine descriptions and the PA-7100-style latency table."""

from repro.ir.opcodes import Opcode
from repro.machine.descriptor import (CacheConfig, MachineDescription,
                                      fig8_machine, fig9_machine,
                                      fig10_machine, fig11_machine,
                                      scalar_machine)
from repro.machine.latencies import latency


def test_paper_machine_constructors():
    assert (fig8_machine().issue_width,
            fig8_machine().branch_issue_limit) == (8, 1)
    assert (fig9_machine().issue_width,
            fig9_machine().branch_issue_limit) == (8, 2)
    assert (fig10_machine().issue_width,
            fig10_machine().branch_issue_limit) == (4, 1)
    assert scalar_machine().issue_width == 1
    for m in (fig8_machine(), fig9_machine(), fig10_machine(),
              scalar_machine()):
        assert m.perfect_caches


def test_fig11_has_real_caches_with_paper_geometry():
    m = fig11_machine()
    assert not m.perfect_caches
    assert m.icache.size_bytes == 64 * 1024
    assert m.icache.line_bytes == 64
    assert m.dcache.miss_penalty == 12


def test_btb_defaults_match_paper():
    m = fig8_machine()
    assert m.btb.entries == 1024
    assert m.btb.mispredict_penalty == 2


def test_with_issue_returns_new_description():
    base = fig8_machine()
    narrow = base.with_issue(2, 1)
    assert narrow.issue_width == 2
    assert base.issue_width == 8  # immutable


def test_cache_config_lines():
    assert CacheConfig(size_bytes=64 * 1024, line_bytes=64).num_lines \
        == 1024


def test_latency_table_shape():
    # Single-cycle integer core operations.
    for op in (Opcode.ADD, Opcode.AND, Opcode.CMP_LT, Opcode.CMOV,
               Opcode.PRED_EQ, Opcode.STORE):
        assert latency(op) == 1, op
    # Load-use delay of one.
    assert latency(Opcode.LOAD) == 2
    # FP pipeline: add/multiply 2, iterative divide long.
    assert latency(Opcode.FADD) == 2
    assert latency(Opcode.FMUL) == 2
    assert latency(Opcode.FDIV) >= 8
    assert latency(Opcode.DIV) >= 8
    # Integer multiply via the FP unit.
    assert latency(Opcode.MUL) >= 2


def test_machine_latency_delegates():
    assert fig8_machine().latency(Opcode.LOAD) == 2


def test_predicate_use_delay_default():
    assert MachineDescription().predicate_use_delay == 1


# ----- latency-table overrides ----------------------------------------------

def test_latency_overrides_by_opcode_and_category():
    from repro.ir.opcodes import OpCategory, category
    m = MachineDescription(latency_overrides=(("load", 4), ("mul", 5)))
    assert m.latency(Opcode.LOAD) == 4
    assert category(Opcode.LOAD_B) == OpCategory.LOAD
    assert m.latency(Opcode.LOAD_B) == 4      # "load" is the category
    assert m.latency(Opcode.MUL) == 5         # "mul" is opcode-specific
    assert m.latency(Opcode.ADD) == 1         # untouched default


def test_opcode_override_beats_category_override():
    m = MachineDescription(latency_overrides={"load": 4, "load_b": 7})
    assert m.latency(Opcode.LOAD_B) == 7      # specific opcode wins
    assert m.latency(Opcode.LOAD) == 4        # category covers the rest


def test_latency_overrides_accept_mapping_and_normalize_order():
    a = MachineDescription(latency_overrides={"mul": 5, "load": 4})
    b = MachineDescription(latency_overrides=(("load", 4), ("mul", 5)))
    assert a.latency_overrides == b.latency_overrides
    assert a.digest() == b.digest()
    assert a.schedule_digest() == b.schedule_digest()


def test_latency_overrides_change_both_digests():
    base = MachineDescription()
    tuned = base.with_latencies({"load": 4})
    assert tuned.digest() != base.digest()
    # Latencies drive DAG edge weights: schedule-relevant.
    assert tuned.schedule_digest() != base.schedule_digest()


def test_empty_overrides_keep_legacy_digests():
    assert MachineDescription(latency_overrides=()).digest() \
        == MachineDescription().digest()


def test_unknown_latency_name_is_typed_spec_error():
    import pytest
    from repro.robustness.errors import SpecError
    with pytest.raises(SpecError, match="unknown op class"):
        MachineDescription(latency_overrides={"ld": 2}).digest()
    with pytest.raises(SpecError):
        MachineDescription(latency_overrides={"bogus": 1})


def test_latency_cycles_out_of_range_rejected():
    import pytest
    from repro.robustness.errors import SpecError
    for bad in (0, -1, 1025, True, 1.5):
        with pytest.raises(SpecError):
            MachineDescription(latency_overrides={"load": bad})
