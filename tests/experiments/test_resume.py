"""Journaled suite runs: resume skips verified work, recomputes the rest."""

import pytest

from repro.engine.recovery.journal import journal_path, replay_journal
from repro.machine.descriptor import fig8_machine
from repro.robustness.errors import ReproError
from repro.toolchain import Model
from repro.workloads import get_workload

from repro.experiments.runner import ExperimentSuite

SCALE = 0.25
#: 3 models on the evaluated machine + the scalar baseline
TASKS_PER_WORKLOAD = 4


def _suite(cache_dir, **kwargs):
    return ExperimentSuite(workloads=[get_workload("wc")], scale=SCALE,
                           cache_dir=str(cache_dir), **kwargs)


def test_no_cache_means_no_journal():
    suite = ExperimentSuite(workloads=[get_workload("wc")], scale=SCALE)
    assert suite.journal is None and suite.run_id is None
    assert "disabled" in suite.journal_summary()


def test_run_writes_journal_records(tmp_path):
    suite = _suite(tmp_path)
    run_id = suite.run_id
    assert run_id is not None
    suite.speedups(fig8_machine())
    suite.close_journal()
    state = replay_journal(journal_path(tmp_path / "runs", run_id))
    assert len(state.completed) == TASKS_PER_WORKLOAD
    assert state.finished
    for task, artifacts in state.completed.items():
        assert task.startswith("simulate:wc:")
        assert all(len(sha) == 64 for _, _, sha in artifacts)


def test_resume_full_run_recomputes_nothing(tmp_path):
    first = _suite(tmp_path)
    table = first.speedups(fig8_machine())
    run_id = first.run_id
    first.close_journal()

    resumed = _suite(tmp_path, run_id=run_id, resume=True)
    assert len(resumed.resumed_verified) == TASKS_PER_WORKLOAD
    assert not resumed.resumed_invalid
    again = resumed.speedups(fig8_machine())
    resumed.close_journal()
    # Byte-identical figures, zero recompute of any stage.
    assert repr(again) == repr(table)
    for stage in ("compile", "emulate", "simulate"):
        assert resumed.metrics.stages[stage].invocations == 0
    assert "zero recompute" in resumed.journal_summary()


def test_resume_partial_run_executes_only_the_frontier(tmp_path):
    # A run that only got as far as the baseline before "dying".
    partial = _suite(tmp_path)
    run_id = partial.run_id
    partial.baseline_cycles("wc")
    partial.journal.close()  # no run-finish: the crash analogue

    resumed = _suite(tmp_path, run_id=run_id, resume=True)
    assert len(resumed.resumed_verified) == 1
    table = resumed.speedups(fig8_machine())
    resumed.close_journal()
    assert resumed.metrics.stages["simulate"].invocations == \
        TASKS_PER_WORKLOAD - 1
    assert set(table["wc"]) == set(Model)

    reference = _suite(tmp_path / "ref")
    assert repr(reference.speedups(fig8_machine())) == repr(table)
    reference.close_journal()


def test_resume_reverifies_artifacts_and_recomputes_corruption(tmp_path):
    first = _suite(tmp_path)
    run_id = first.run_id
    first.speedups(fig8_machine())
    first.close_journal()
    # Corrupt one completed stats artifact behind the journal's back.
    state = replay_journal(journal_path(tmp_path / "runs", run_id))
    kind, key, _sha = next(iter(state.completed.values()))[0]
    path = first.ctx.store._path(kind, key)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0x10
    path.write_bytes(bytes(blob))

    resumed = _suite(tmp_path, run_id=run_id, resume=True)
    assert len(resumed.resumed_invalid) == 1
    assert len(resumed.resumed_verified) == TASKS_PER_WORKLOAD - 1
    table = resumed.speedups(fig8_machine())
    resumed.close_journal()
    assert resumed.metrics.stages["simulate"].invocations == 1
    assert set(table["wc"]) == set(Model)
    assert "1 failed verification" in resumed.journal_summary()


def test_resume_unknown_run_id_raises_typed(tmp_path):
    with pytest.raises(ReproError, match="unknown run id"):
        _suite(tmp_path, run_id="R00000000-000000-dead", resume=True)


def test_resume_without_run_id_is_rejected(tmp_path):
    with pytest.raises(ValueError, match="requires a run_id"):
        _suite(tmp_path, resume=True)


def test_failed_task_is_journaled(tmp_path):
    from repro.emu.memory import EmulationFault
    suite = _suite(tmp_path, max_steps=10)  # guaranteed step overrun
    run_id = suite.run_id
    with pytest.raises(EmulationFault):
        suite.baseline_cycles("wc")
    suite.close_journal(ok=False)
    state = replay_journal(journal_path(tmp_path / "runs", run_id))
    assert not state.completed
    assert len(state.failed) == 1
