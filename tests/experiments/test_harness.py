"""Experiment harness: memoization, speedup math, renderers."""

import pytest

from repro.experiments.render import (render_speedup_figure, render_table2,
                                      render_table3)
from repro.experiments.runner import (ExperimentSuite, mean_speedups,
                                      scaled_fig11_machine)
from repro.machine.descriptor import fig8_machine, scalar_machine
from repro.toolchain import Model
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def small_suite():
    return ExperimentSuite(workloads=[get_workload("wc"),
                                      get_workload("cmp")], scale=0.3)


def test_run_is_memoized(small_suite):
    r1 = small_suite.run("wc", Model.SUPERBLOCK, fig8_machine())
    r2 = small_suite.run("wc", Model.SUPERBLOCK, fig8_machine())
    assert r1.stats is r2.stats


def test_speedups_positive_and_baseline_is_one_issue(small_suite):
    base = small_suite.baseline_cycles("wc")
    scalar = small_suite.run("wc", Model.SUPERBLOCK, scalar_machine())
    assert base == scalar.cycles
    table = small_suite.speedups(fig8_machine())
    for row in table.values():
        for value in row.values():
            assert value > 0.5


def test_mean_speedups_arithmetic(small_suite):
    table = {
        "x": {Model.SUPERBLOCK: 1.0, Model.CMOV: 2.0,
              Model.FULLPRED: 3.0},
        "y": {Model.SUPERBLOCK: 3.0, Model.CMOV: 2.0,
              Model.FULLPRED: 5.0},
    }
    means = mean_speedups(table)
    assert means[Model.SUPERBLOCK] == 2.0
    assert means[Model.FULLPRED] == 4.0


def test_dynamic_counts_and_branch_stats_structure(small_suite):
    counts = small_suite.dynamic_counts()
    assert set(counts) == {"wc", "cmp"}
    for row in counts.values():
        assert all(v > 0 for v in row.values())
    stats = small_suite.branch_stats()
    for row in stats.values():
        for br, mp, mpr in row.values():
            assert br >= 0 and mp >= 0 and 0.0 <= mpr <= 1.0


def test_fig11_machine_has_real_scaled_caches():
    m = scaled_fig11_machine()
    assert not m.perfect_caches
    assert m.icache.size_bytes < 64 * 1024
    assert m.dcache.size_bytes < 64 * 1024
    assert m.icache.miss_penalty == 12


def test_renderers_produce_text(small_suite):
    table = small_suite.speedups(fig8_machine())
    fig = render_speedup_figure(table, "Figure X")
    assert "Figure X" in fig and "wc" in fig and "#" in fig
    t2 = render_table2(small_suite.dynamic_counts())
    assert "Table 2" in t2 and "mean ratio" in t2
    t3 = render_table3(small_suite.branch_stats())
    assert "Table 3" in t3 and "MPR" in t3


def test_agreement_check_raises_on_divergence(small_suite):
    from repro.robustness.errors import ModelDivergenceError

    # Sanity: the real check passes...
    small_suite.check_model_agreement("wc", fig8_machine())
    # ...and a forged execution entry is caught, with the divergent
    # model and observable named in the typed error.
    wc = small_suite._workload("wc")
    key = small_suite.ctx.execution_key(wc, Model.CMOV, fig8_machine())
    memo = small_suite.ctx._execution
    saved = memo.get(key)
    assert saved is not None
    import copy
    forged = copy.copy(saved)
    forged.return_value = 123456789
    memo[key] = forged
    with pytest.raises(ModelDivergenceError) as exc:
        small_suite.check_model_agreement("wc", fig8_machine())
    assert exc.value.kind == "return-value"
    assert exc.value.model == Model.CMOV.value
    memo[key] = saved

    # The oracle sees deeper than return values: a forged store-stream
    # signature is also divergence.
    forged2 = copy.copy(saved)
    forged2.output_signature ^= 0xDEAD
    memo[key] = forged2
    with pytest.raises(ModelDivergenceError) as exc:
        small_suite.check_model_agreement("wc", fig8_machine())
    assert exc.value.kind == "output-stream"
    memo[key] = saved
