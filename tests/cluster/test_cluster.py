"""Fault-tolerant campaign execution: coordinator + real workers.

The byte-identity contract under test: a sharded campaign — at any
worker count, through SIGKILLs and reassignments — produces the exact
``SweepResult`` bytes of a cold single-node ``run_sweep``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.engine.metrics import PipelineMetrics
from repro.robustness.errors import ReproError
from repro.service.cluster import (ClusterConfig, ClusterOps,
                                   campaign_dir, live_worker_ids,
                                   open_campaign, run_cluster_sweep,
                                   workers_dir)
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec

SPEC = SweepSpec(name="cluster-t", scale=0.05, max_steps=2_000_000,
                 workloads=("wc",), models=("superblock",),
                 issue_widths=(2, 4))

_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


def single_node_reference(tmp_path) -> str:
    out = run_sweep(SPEC, cache_dir=str(tmp_path / "ref-cache"), jobs=2)
    return out.result.to_json()


def test_zero_workers_degrades_to_local_byte_identical(tmp_path):
    metrics = PipelineMetrics()
    out = run_cluster_sweep(
        SPEC, str(tmp_path / "cache"),
        ClusterConfig(worker_grace=0.1), metrics=metrics)
    assert out.result.to_json() == single_node_reference(tmp_path)
    cdir = campaign_dir(str(tmp_path / "cache"), SPEC.sweep_digest())
    assert json.loads(
        (cdir / "campaign.json").read_text())["state"] == "done"
    # A re-run adopts the done campaign: pure warm aggregation.
    again = run_cluster_sweep(SPEC, str(tmp_path / "cache"),
                              ClusterConfig(worker_grace=0.1))
    assert again.result.to_json() == out.result.to_json()
    assert again.points_cached == again.points_total


def test_require_workers_fails_typed(tmp_path):
    with pytest.raises(ReproError, match="no campaign worker"):
        run_cluster_sweep(SPEC, str(tmp_path / "cache"),
                          ClusterConfig(worker_grace=0.1,
                                        require_workers=True))


_VICTIM = """
import sys, time
sys.path.insert(0, {src!r})
from repro.service.cluster import ClusterOps
ops = ClusterOps({cache!r})
worker_id = ops.register()
work = None
deadline = time.monotonic() + 30
while work is None and time.monotonic() < deadline:
    work = ops.claim(worker_id)
    time.sleep(0.05)
assert work is not None, "never saw the campaign"
print("CLAIMED", work["shard"], flush=True)
time.sleep(300)  # hang mid-shard, never heartbeating, until SIGKILL
"""


def test_sigkill_mid_shard_reassigns_and_stays_byte_identical(tmp_path):
    """The orphan-recovery satellite: a worker claims a shard and is
    SIGKILLed mid-execution.  The coordinator breaks the lease, records
    a typed WorkerLostError event, bumps ``shards_reassigned``, and the
    campaign still completes every shard exactly once with the
    single-node result bytes."""
    cache = str(tmp_path / "cache")
    config = ClusterConfig(worker_grace=5.0, lease_timeout=2.0)
    open_campaign(cache, SPEC, config, "fastpath")

    victim = subprocess.Popen(
        [sys.executable, "-c", _VICTIM.format(src=_SRC, cache=cache)],
        stdout=subprocess.PIPE, text=True)
    assert victim.stdout.readline().startswith("CLAIMED")
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)  # reaped: the pid probe now sees it dead

    # A stand-in registration keeps the coordinator in monitor mode
    # (the victim's entry dies with its pid) long enough to observe the
    # lease break; it retires once the loss is on record, at which
    # point the coordinator executes the remaining shards itself.
    ops = ClusterOps(cache)
    stand_in = ops.register(worker_id="stand-in", pid=os.getpid())
    cdir = campaign_dir(cache, SPEC.sweep_digest())

    def retire_after_loss():
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if list((cdir / "events").glob("lost-*.json")):
                ops.unregister(stand_in)
                return
            time.sleep(0.05)

    retirer = threading.Thread(target=retire_after_loss, daemon=True)
    retirer.start()
    metrics = PipelineMetrics()
    out = run_cluster_sweep(SPEC, cache, config, metrics=metrics)
    retirer.join(timeout=30)

    assert out.result.to_json() == single_node_reference(tmp_path)
    assert metrics.shards_reassigned >= 1
    assert metrics.workers_lost >= 1
    (lost,) = [json.loads(p.read_text())
               for p in (cdir / "events").glob("lost-*.json")]
    assert lost["error"] == "WorkerLostError"
    assert lost["shard"] == 0
    # Every shard committed exactly once.
    done = sorted((cdir / "done").glob("shard-*.json"))
    assert len(done) == json.loads(
        (cdir / "campaign.json").read_text())["shards"]


def test_real_worker_process_executes_the_campaign(tmp_path):
    """One `repro worker` subprocess does the work; the coordinator
    only monitors and aggregates."""
    cache = str(tmp_path / "cache")
    env = dict(os.environ, PYTHONPATH=_SRC)
    worker = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--cache-dir", cache,
         "--idle-timeout", "30"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)
    try:
        deadline = time.monotonic() + 15
        while not live_worker_ids(cache):
            assert time.monotonic() < deadline, "worker never registered"
            time.sleep(0.05)
        metrics = PipelineMetrics()
        out = run_cluster_sweep(
            SPEC, cache, ClusterConfig(worker_grace=10.0),
            metrics=metrics)
        _, stderr = worker.communicate(timeout=60)
    finally:
        if worker.poll() is None:
            worker.kill()
    assert worker.returncode == 0, stderr
    assert "shard(s) completed" in stderr
    assert out.result.to_json() == single_node_reference(tmp_path)
    # The registry is clean: the worker unregistered on exit.
    assert live_worker_ids(cache) == []
    assert not list(workers_dir(cache).glob("*.json"))
