"""Cluster chaos campaign: every injection recovers or fails typed."""

import pytest

from repro.robustness.chaos import format_chaos_reports
from repro.service.chaos import run_cluster_chaos_campaign

EXPECTED_INJECTIONS = {
    "cluster-worker-loss", "cluster-zombie-fencing",
    "cluster-hedge-dedup",
}


@pytest.fixture(scope="module")
def reports():
    return run_cluster_chaos_campaign()


def test_campaign_covers_every_injection_kind(reports):
    assert {r.injection for r in reports} == EXPECTED_INJECTIONS


def test_every_injection_recovers_or_fails_typed(reports):
    bad = [r for r in reports if not r.ok]
    assert not bad, format_chaos_reports(bad)


def test_worker_loss_reassigns_and_stays_byte_identical(reports):
    loss = next(r for r in reports
                if r.injection == "cluster-worker-loss")
    assert loss.ok and loss.expected == "recover"
    assert "byte-identical" in loss.message
    assert "reassigned" in loss.message


def test_zombie_fencing_is_a_typed_failure(reports):
    fenced = next(r for r in reports
                  if r.injection == "cluster-zombie-fencing")
    assert fenced.ok and fenced.expected == "typed-failure"
    assert "exit 27" in fenced.message
    assert "successor" in fenced.message


def test_hedge_race_commits_exactly_once(reports):
    hedge = next(r for r in reports
                 if r.injection == "cluster-hedge-dedup")
    assert hedge.ok and hedge.expected == "recover"
    assert "one done marker" in hedge.message
