"""Shard-lease substrate: fencing epochs, commit-once, hedging races."""

import json
import subprocess
import sys

import pytest

from repro.engine.recovery.leases import ShardLease, ShardLeaseStore
from repro.robustness.errors import LeaseFencedError


@pytest.fixture()
def store(tmp_path):
    return ShardLeaseStore(tmp_path / "campaign")


def test_epochs_are_store_wide_and_strictly_increasing(store):
    issued = [store.next_epoch() for _ in range(5)]
    assert issued == sorted(issued)
    assert len(set(issued)) == 5
    lease_a = store.claim(0, owner="a")
    lease_b = store.claim(1, owner="b")
    assert lease_b.epoch > lease_a.epoch > issued[-1]


def test_claim_heartbeat_complete_round_trip(store):
    lease = store.claim(3, owner="w1")
    assert (lease.shard, lease.owner, lease.beats) == (3, "w1", 0)
    renewed = store.heartbeat(lease)
    renewed = store.heartbeat(renewed)
    assert renewed.beats == 2
    assert renewed.epoch == lease.epoch
    assert store.complete(renewed, {"points": [6, 7]}) is True
    marker = store.done(3)
    assert marker["points"] == [6, 7]
    assert marker["epoch"] == lease.epoch
    assert store.read(3) is None  # slot cleared on commit
    # Done shards can never be re-claimed.
    assert store.claim(3, owner="w2") is None


def test_claim_is_exclusive_and_loser_observes_winner(store):
    winner = store.claim(0, owner="winner")
    assert store.claim(0, owner="loser") is None
    observed = store.read(0)
    assert observed.owner == "winner"
    assert observed.epoch == winner.epoch


def test_fenced_commit_raises_and_writes_nothing(store):
    zombie = store.claim(0, owner="zombie")
    assert store.break_lease(0, zombie.epoch) is True
    successor = store.claim(0, owner="successor")
    assert successor.epoch > zombie.epoch
    with pytest.raises(LeaseFencedError) as exc:
        store.complete(zombie, {"points": [0]})
    assert exc.value.exit_code == 27
    assert exc.value.holder_epoch == successor.epoch
    assert store.done(0) is None  # the zombie proved nothing
    assert store.count_events("fenced") == 1
    # The successor's commit is untouched by the zombie's attempt.
    assert store.complete(successor, {"points": [0]}) is True
    assert store.done(0)["owner"] == "successor"


def test_fenced_heartbeat_raises(store):
    zombie = store.claim(0, owner="zombie")
    store.break_lease(0, zombie.epoch)
    store.claim(0, owner="successor")
    with pytest.raises(LeaseFencedError):
        store.heartbeat(zombie)


def test_break_lease_checks_the_epoch(store):
    first = store.claim(0, owner="w1")
    # A breaker acting on stale knowledge cannot break a fresh lease.
    assert store.break_lease(0, first.epoch - 1) is False
    assert store.read(0) is not None
    assert store.break_lease(0, first.epoch) is True
    fresh = store.claim(0, owner="w2")
    assert store.break_lease(0, first.epoch) is False  # successor safe
    assert store.read(0).epoch == fresh.epoch


def test_hedge_is_a_separate_slot_and_first_commit_wins(store):
    primary = store.claim(0, owner="slow")
    hedge = store.claim(0, owner="fast", hedge=True)
    assert hedge is not None and hedge.hedge
    assert hedge.epoch > primary.epoch
    # Only one hedge per shard.
    assert store.claim(0, owner="other", hedge=True) is None
    assert store.complete(hedge, {"points": [0], "by": "fast"}) is True
    # The primary arrives second: clean loss, marker untouched.
    assert store.complete(primary, {"points": [0], "by": "slow"}) is False
    assert store.done(0)["by"] == "fast"
    assert store.read(0) is None and store.read(0, hedge=True) is None


def test_release_is_epoch_checked(store):
    old = store.claim(0, owner="w1")
    store.break_lease(0, old.epoch)
    fresh = store.claim(0, owner="w2")
    old_release = store.release(old)  # no-op: epoch superseded
    assert old_release is None
    assert store.read(0).epoch == fresh.epoch
    store.release(fresh)
    assert store.read(0) is None


def test_events_are_deduped_by_kind_shard_epoch(store):
    assert store.record_event("lost", 2, 7, worker="w1") is True
    assert store.record_event("lost", 2, 7, worker="w2") is False
    assert store.record_event("lost", 2, 8) is True
    assert store.count_events("lost") == 2
    store.record_failure(2, 9, "EmulationTimeout", "m" * 1000, True)
    (fail,) = store.events("fail")
    assert fail["transient"] is True
    assert len(fail["message"]) == 500
    assert store.failure_count(2) == 1


_CONTENDER = """
import json, sys
sys.path.insert(0, {src!r})
from repro.engine.recovery.leases import ShardLeaseStore
store = ShardLeaseStore({root!r})
lease = store.claim(0, owner=sys.argv[1])
if lease is None:
    holder = store.read(0)
    print(json.dumps({{"won": False,
                       "observed_owner": holder.owner,
                       "observed_epoch": holder.epoch}}))
else:
    print(json.dumps({{"won": True, "owner": lease.owner,
                       "epoch": lease.epoch}}))
"""


def test_two_processes_contend_for_one_shard(tmp_path):
    """The contention satellite, with real OS processes: exactly one
    claim wins, and the loser can read the winner's fencing token."""
    import repro
    src = str(next(p for p in map(str, repro.__path__)))
    root = str(tmp_path / "campaign")
    script = _CONTENDER.format(src=src[: -len("/repro")], root=root)
    procs = [subprocess.Popen([sys.executable, "-c", script, name],
                              stdout=subprocess.PIPE, text=True)
             for name in ("alpha", "beta")]
    reports = [json.loads(p.communicate(timeout=60)[0]) for p in procs]
    assert all(p.returncode == 0 for p in procs)
    winners = [r for r in reports if r["won"]]
    losers = [r for r in reports if not r["won"]]
    assert len(winners) == 1 and len(losers) == 1
    # The loser observed the winner's identity — fencing in action.
    assert losers[0]["observed_owner"] == winners[0]["owner"]
    assert losers[0]["observed_epoch"] == winners[0]["epoch"]
